// Cost model of the simulated machines, calibrated to the paper's own
// measurements (NOT to this container's hardware) — see DESIGN.md §6 for the
// calibration table and the paper anchors of every number.
#pragma once

#include <string>

#include "sim/event_queue.hpp"

namespace lpt::sim {

struct CostModel {
  std::string name;
  int num_cores = 56;
  /// Per-core throughput for workload flop→time conversion (GFLOP/s/core,
  /// achieved DGEMM rate — not peak).
  double gflops_per_core = 28.0;

  // --- user-level threading ---
  Time ult_ctx_switch = 75;  ///< §2.1 "about one hundred cycles"

  // --- signal delivery (Fig 4 anchors) ---
  /// Uncontended handler entry+exit (user + kernel, excluding the lock wait).
  Time signal_handler = 2'400;
  /// Kernel critical section serializing concurrent handler invocations;
  /// sets the slope of the naive per-worker line in Fig 4 (tens of µs mean
  /// at ~100 simultaneously interrupted workers). Note this must stay below
  /// interval/num_cores or aligned timers could not sustain the paper's
  /// 100 µs interval on 56 workers (Fig 6) — only the lock serializes;
  /// handler bodies run concurrently on their own cores.
  Time kernel_lock = 1'200;
  /// Cost for the *sender* to issue pthread_kill ("much cheaper than signal
  /// handling", §3.2.2).
  Time pthread_kill = 350;

  // --- KLT suspend/resume (Fig 6 / Table 1 anchors) ---
  Time futex_wake = 600;             ///< FUTEX_WAKE syscall on the waker
  Time futex_wakeup_latency = 1'900; ///< parked KLT runnable → running
  /// Extra cost of the portable sigsuspend/pthread_kill parking (§3.3.1).
  Time sigsuspend_extra = 3'500;
  /// Affinity reset + cache-cold penalty when a KLT crosses workers through
  /// the global pool (§3.3.2); avoided by worker-local pools.
  Time klt_global_pool_penalty = 2'800;
  /// Latency for the KLT creator to deliver a new KLT to the pool.
  Time klt_create_latency = 25'000;
  /// Residual signal-yield preemption cost beyond the handler itself
  /// (sigprocmask unblock + scheduler requeue/pop); calibrates Table 1's
  /// 3.5 µs against the ~2 µs bare interruption.
  Time sigyield_extra = 450;
  /// Residual KLT-switching bookkeeping beyond the two futex wake/wakeup
  /// pairs (worker remap, pool ops); calibrates Table 1's 9.9 µs.
  Time kltswitch_extra = 2'300;

  // --- 1:1 threads / OS scheduler ---
  Time os_preempt = 2'800;      ///< Table 1, 1:1 thread preemption
  Time os_ctx_switch = 1'800;   ///< KLT context switch (sched + state)
  Time cfs_timeslice = 4'000'000;        ///< ~targeted latency / nr_running
  Time cfs_balance_period = 4'000'000;   ///< periodic load balancing
  Time cfs_idle_balance_min = 200'000;   ///< idle balancing reaction window
  Time cfs_idle_balance_max = 2'000'000;
  /// OS thread wake-to-run latency (futex wake of a blocked pthread).
  Time os_wake_latency = 3'000;

  /// ~2-socket Skylake 8180M (56 cores @ 2.5 GHz) — Table 2.
  static CostModel skylake();
  /// Xeon Phi 7250 (68 cores @ 1.4 GHz) — Table 2. All CPU-bound costs are
  /// roughly 5–6x Skylake (Table 1: 15/18/62 µs vs 2.8/3.5/9.9 µs).
  static CostModel knl();
};

}  // namespace lpt::sim
