// Preemption-starvation watchdog + background metrics publisher
// (docs/observability.md, "Metrics & watchdog").
//
// The paper's value proposition is a *bounded* time-to-preemption; the
// watchdog is the component that checks the bound instead of assuming it.
// It periodically inspects each worker's always-on counters
// (common/metrics.hpp) and flags three pathologies:
//
//   kRunnableStarvation  a worker has queued runnable ULTs but has not
//                        dispatched anything for watchdog_runnable_ns —
//                        work is sitting behind a frozen worker.
//   kWorkerStall         preemption ticks keep arriving at a worker running
//                        a preemptible ULT, but the handler never fires:
//                        blocked signal mask, a stuck NoPreemptGuard, or a
//                        lost timer.
//   kQuantumOverrun      a preemptible ULT has monopolized its worker for
//                        watchdog_quantum_factor quanta — preemption is
//                        firing but not bounding runtime.
//   kFaultStorm          fault isolation terminated watchdog_fault_storm or
//                        more ULTs on one worker within a single poll period
//                        — containment is masking a systemic failure (bad
//                        workload, corrupted shared state) rather than an
//                        isolated bug.
//   kSyscallBlocked      the worker's hosted ULT has sat inside an annotated
//                        blocking syscall (lpt::io::blocking_region) past
//                        syscall_grace_ns. Not a stall: the wedge is
//                        *declared*, so instead of the force-replace ladder
//                        the wedge sentinel activates a compensating spare
//                        KLT and the old host is reabsorbed when the syscall
//                        returns (docs/robustness.md).
//
// Detection is a pure function over counter *progress* (evaluate_worker):
// no per-dispatch timestamps, no hot-path clock reads, and no dereference
// of ThreadCtl pointers (which a concurrent join may delete). Each flag
// raises a counter, emits a trace event when tracing is armed, and invokes
// RuntimeOptions::watchdog_callback (default: a rate-limited stderr report).
//
// Driving: when a monitor timer thread exists it calls Runtime::watchdog_tick
// from its loop (zero extra threads); with TimerKind::None or PosixPerWorker
// the watchdog runs its own thread, parked on a futex between periods. The
// same tick also accrues sampled time-in-state for WorkerMetrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/futex.hpp"
#include "common/metrics.hpp"

namespace lpt {

class Runtime;

/// Remediation action the self-healing ladder took (docs/robustness.md,
/// RuntimeOptions::remediation). Ordered by escalation severity.
enum class RemediationKind : std::uint8_t {
  kNone = 0,        ///< detection only (remediation off, or budget exhausted)
  kRetick = 1,      ///< directed preemption re-tick at an overrunning worker
  kCancel = 2,      ///< deadline expiry → cancel request + directed tick
  kKltReplace = 3,  ///< stalled worker's host KLT force-replaced
  kDeadlockBreak = 4,  ///< deadlock cycle victim cancelled out of its wait
};
const char* remediation_kind_name(RemediationKind k);

/// What the watchdog observed when it flagged. Carries only values (never a
/// ThreadCtl pointer: control blocks die concurrently with the watchdog).
struct WatchdogReport {
  enum class Kind : std::uint8_t {
    kRunnableStarvation = 0,
    kWorkerStall = 1,
    kQuantumOverrun = 2,
    kFaultStorm = 3,
    kSyscallBlocked = 4,
    kDeadlock = 5,       ///< waits-for cycle confirmed by the detector
    kAbandonedLock = 6,  ///< lock owner ended while still holding it
  };
  Kind kind;
  int worker = -1;
  std::int64_t age_ns = 0;  ///< how long the pathology has persisted
  std::int64_t queue_depth = 0;
  std::uint64_t ticks_without_handler = 0;  ///< kWorkerStall only
  /// Action the remediation ladder took for this episode (kNone when
  /// remediation is off, the budget ran out, or the action failed).
  RemediationKind remediation = RemediationKind::kNone;
  // kDeadlock / kAbandonedLock payload: the cycle members (trace ids and
  // prof::WaitKind of the awaited resource), truncated at kMaxCycle, and the
  // victim's trace id (0 when detection-only). For kAbandonedLock, cycle[0]
  // is the dead owner and cycle_kinds[0] the abandoned resource's kind.
  static constexpr int kMaxCycle = 8;
  std::uint32_t cycle[kMaxCycle] = {};
  std::uint8_t cycle_kinds[kMaxCycle] = {};
  int cycle_len = 0;
  std::uint32_t victim = 0;
};
const char* watchdog_kind_name(WatchdogReport::Kind k);

namespace watchdog_detail {

/// Thresholds, resolved once at start. Zero disables a check.
struct WatchdogLimits {
  std::int64_t runnable_ns = 0;
  std::int64_t quantum_ns = 0;   ///< 0 when no preemption timer is armed
  std::uint64_t stall_ticks = 0; ///< 0 when ticks_sent never advances
  std::uint64_t storm_faults = 0; ///< contained faults per poll period; 0 = off
  std::int64_t syscall_grace_ns = 0; ///< wedge-sentinel grace; 0 = off
};

/// One worker's observable facts at poll time, as seen by the watchdog.
struct WorkerObs {
  std::int64_t now_ns = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t ticks_sent = 0;
  std::uint64_t handler_entries = 0;
  std::int64_t queue_depth = 0;
  std::uint64_t ult_faults = 0;     ///< fault-isolation terminations, ever
  bool parked = false;              ///< packing-parked or not yet started
  bool preemptible_running = false; ///< current ULT has Preempt != None
  // Blocking-syscall state word (worker.hpp), read consistently at poll time.
  bool in_syscall = false;          ///< syscall_epoch was odd
  std::int64_t syscall_age_ns = 0;  ///< now - entry timestamp (valid if odd)
  std::uint64_t syscall_epoch = 0;  ///< the odd epoch observed
};

/// Persistent per-worker watch state between polls. `primed` defers judgment
/// until a baseline exists; the *_flagged latches make each pathology flag
/// once per episode (cleared when the counter in question moves again).
struct WorkerWatch {
  bool primed = false;
  std::uint64_t dispatches = 0;
  std::int64_t dispatch_change_ns = 0;  ///< when dispatches last moved
  std::uint64_t handler_entries = 0;
  std::uint64_t ticks_at_entry_change = 0;  ///< ticks_sent at that moment
  bool depth_zero = true;
  std::int64_t depth_nonzero_ns = 0;  ///< when depth last left zero
  std::uint64_t ult_faults = 0;     ///< fault count at the last poll
  bool starve_flagged = false;
  bool stall_flagged = false;
  bool overrun_flagged = false;
  bool storm_flagged = false;
  /// The epoch already flagged (and possibly compensated); one flag per
  /// region instance. 0 = none — real published epochs are odd, never 0.
  std::uint64_t syscall_epoch_flagged = 0;
};

inline constexpr unsigned kFlagRunnableStarvation = 1u << 0;
inline constexpr unsigned kFlagWorkerStall = 1u << 1;
inline constexpr unsigned kFlagQuantumOverrun = 1u << 2;
inline constexpr unsigned kFlagFaultStorm = 1u << 3;
inline constexpr unsigned kFlagSyscallBlocked = 1u << 4;

/// Pure detection core (unit-tested without a Runtime). Updates `watch` from
/// the observation and returns a bitmask of *newly entered* flag episodes.
unsigned evaluate_worker(const WorkerObs& obs, const WatchdogLimits& limits,
                         WorkerWatch& watch);

}  // namespace watchdog_detail

/// The runtime-facing watchdog. Lifecycle is owned by Runtime: start() in
/// the constructor (after the timer), stop() in the destructor (right after
/// the timer stops, while workers still exist).
class Watchdog {
 public:
  ~Watchdog() { stop(); }

  /// `own_thread`: spawn a dedicated poll thread (TimerKind::None /
  /// PosixPerWorker); otherwise the monitor timer drives tick().
  void start(Runtime& rt, bool own_thread);
  void stop();

  /// Called by whichever thread drives the watchdog, at its own cadence
  /// (every monitor tick, or once per watchdog period from the own thread).
  /// Accrues time-in-state each call; runs the starvation poll at most once
  /// per watchdog period. Safe to call from multiple driver threads (the
  /// fallback timer may coexist with the main monitor): a try-lock keeps
  /// passes from overlapping, extra callers simply skip.
  void tick(std::int64_t now);

  std::uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  std::uint64_t flagged(WatchdogReport::Kind k) const {
    return flags_[static_cast<int>(k)].load(std::memory_order_relaxed);
  }

 private:
  /// Runtime::deadlock_poll (park.cpp) reports cycles through report() and
  /// consumes the remediation budget of the poll period it runs in.
  friend class Runtime;

  void poll(std::int64_t now);
  void report(const WatchdogReport& r);
  void thread_loop();

  Runtime* rt_ = nullptr;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> busy_{false};  ///< try-lock over tick bodies
  std::int64_t period_ns_ = 0;
  watchdog_detail::WatchdogLimits limits_;
  std::vector<watchdog_detail::WorkerWatch> watch_;
  std::int64_t last_accrue_ns_ = 0;
  std::int64_t next_poll_ns_ = 0;
  /// Default-sink rate limit, per flag kind: a starving runtime flags every
  /// period, but one noisy kind must not silence reports of the others.
  std::int64_t last_stderr_ns_[7] = {};
  /// Remediation ladder state: actions taken in the current poll period
  /// (capped at options().remediate_max_per_period) and the master switch,
  /// resolved at start().
  bool remediate_ = false;
  int remediate_budget_ = 0;
  /// Deadlock-detection cadence: run Runtime::deadlock_poll every
  /// deadlock_every_ watchdog polls (RuntimeOptions::deadlock_periods).
  int deadlock_every_ = 1;
  int deadlock_tick_ = 0;

  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> flags_[7] = {};

  // Own-thread mode.
  std::atomic<bool> thread_stop_{false};
  FutexGate gate_;
  std::thread thread_;
};

/// Background publisher: rewrites LPT_METRICS_FILE atomically (tmp + rename)
/// every period with a fresh snapshot, so an external scraper never reads a
/// torn file. Off unless a file is configured. Writes once immediately at
/// start and once more at stop so short-lived processes still leave a file.
class MetricsPublisher {
 public:
  ~MetricsPublisher() { stop(); }

  void start(Runtime& rt, metrics::PublishConfig cfg);
  void stop();
  bool running() const { return thread_.joinable(); }

 private:
  void publish_once();
  void thread_loop();

  Runtime* rt_ = nullptr;
  metrics::PublishConfig cfg_;
  metrics::Format format_ = metrics::Format::kPrometheus;
  std::atomic<bool> stop_{false};
  FutexGate gate_;
  std::thread thread_;
};

}  // namespace lpt
