// Minimal dense kernels (column-major, double) backing the Cholesky
// application: the operations SLATE's kernel issues per tile — DGEMM, DSYRK,
// DTRSM, DPOTRF (§4.1). Correctness-first reference implementations; tested
// against naive full-matrix factorizations.
#pragma once

#include <cstddef>

namespace lpt::apps {

/// C(m x n) -= A(m x k) * B(n x k)^T   (the trailing update of Cholesky)
void dgemm_nt_minus(int m, int n, int k, const double* a, int lda,
                    const double* b, int ldb, double* c, int ldc);

/// C(n x n) -= A(n x k) * A(n x k)^T, lower triangle only (SYRK).
void dsyrk_ln_minus(int n, int k, const double* a, int lda, double* c, int ldc);

/// B(m x n) <- B * L^-T where L is the lower-triangular n x n tile (TRSM,
/// right-side, lower, transposed — the Cholesky panel solve).
void dtrsm_rltn(int m, int n, const double* l, int ldl, double* b, int ldb);

/// Unblocked Cholesky of the lower triangle of A(n x n). Returns false if
/// the matrix is not positive definite.
bool dpotrf_lower(int n, double* a, int lda);

/// Reference full-matrix lower Cholesky (for tests).
bool cholesky_reference(int n, double* a, int lda);

/// max_ij |a_ij - b_ij| over the lower triangle.
double lower_max_diff(int n, const double* a, int lda, const double* b, int ldb);

/// Fill `a` (n x n, lda) with a deterministic symmetric positive definite
/// matrix (random-ish entries, diagonally dominated).
void make_spd(int n, double* a, int lda, unsigned seed);

}  // namespace lpt::apps
