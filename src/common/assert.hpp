// Runtime checks that stay enabled in release builds.
//
// The threading runtime manipulates raw contexts and signal state; silent
// corruption is far worse than an aborted run, so LPT_CHECK is always on.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lpt {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  // fprintf is not async-signal-safe, but we are already crashing.
  std::fprintf(stderr, "LPT_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace lpt

#define LPT_CHECK(expr)                                              \
  do {                                                               \
    if (__builtin_expect(!(expr), 0))                                \
      ::lpt::check_fail(#expr, __FILE__, __LINE__, nullptr);         \
  } while (0)

#define LPT_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (__builtin_expect(!(expr), 0))                                \
      ::lpt::check_fail(#expr, __FILE__, __LINE__, (msg));           \
  } while (0)

// Check a libc call that reports failure via -1/errno.
#define LPT_CHECK_SYSCALL(call)                                      \
  do {                                                               \
    if (__builtin_expect((call) == -1, 0))                           \
      ::lpt::check_fail(#call, __FILE__, __LINE__, strerror(errno)); \
  } while (0)
