#include "common/metrics.hpp"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace lpt::metrics {

const char* worker_state_name(WorkerState s) {
  switch (s) {
    case WorkerState::kScheduling: return "scheduling";
    case WorkerState::kRunningUlt: return "running";
    case WorkerState::kIdle: return "idle";
    case WorkerState::kParked: return "parked";
  }
  return "?";
}

WorkerSample WorkerMetrics::sample() const {
  WorkerSample s;
  s.dispatches = dispatches.value();
  s.yields = yields.value();
  s.blocks = blocks.value();
  s.exits = exits.value();
  s.steals = steals.value();
  s.preempt_signal_yield = preempt_signal_yield.value();
  s.preempt_klt_switch = preempt_klt_switch.value();
  s.ticks_sent = ticks_sent.value();
  s.handler_entries = handler_entries.value();
  s.handler_deferred = handler_deferred.value();
  s.klt_degraded_ticks = klt_degraded_ticks.value();
  s.ult_faults = ult_faults.value();
  s.stack_overflows = stack_overflows.value();
  s.escaped_exceptions = escaped_exceptions.value();
  s.ult_cancels = ult_cancels.value();
  s.syscall_blocks = syscall_blocks.value();
  for (int i = 0; i < kWorkerStateCount; ++i)
    s.time_in_state_ns[i] = time_in_state_ns[i].value();
  s.state = state.load(std::memory_order_relaxed);
  return s;
}

void Snapshot::finalize() {
  dispatches = yields = blocks = exits = steals = 0;
  preempt_signal_yield = preempt_klt_switch = preemptions = 0;
  ticks_sent = handler_entries = handler_deferred = klt_degraded_ticks = 0;
  ult_faults = stack_overflows = escaped_exceptions = ult_cancels = 0;
  syscall_blocks = 0;
  run_queue_depth = 0;
  for (const WorkerSample& w : workers) {
    dispatches += w.dispatches;
    yields += w.yields;
    blocks += w.blocks;
    exits += w.exits;
    steals += w.steals;
    preempt_signal_yield += w.preempt_signal_yield;
    preempt_klt_switch += w.preempt_klt_switch;
    ticks_sent += w.ticks_sent;
    handler_entries += w.handler_entries;
    handler_deferred += w.handler_deferred;
    klt_degraded_ticks += w.klt_degraded_ticks;
    ult_faults += w.ult_faults;
    stack_overflows += w.stack_overflows;
    escaped_exceptions += w.escaped_exceptions;
    ult_cancels += w.ult_cancels;
    syscall_blocks += w.syscall_blocks;
    run_queue_depth += w.queue_depth;
  }
  preemptions = preempt_signal_yield + preempt_klt_switch;
}

namespace {

void prom_family(std::FILE* out, const char* name, const char* type,
                 const char* help) {
  std::fprintf(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
}

void prom_u64(std::FILE* out, const char* name, std::uint64_t v) {
  std::fprintf(out, "%s %" PRIu64 "\n", name, v);
}

void prom_i64(std::FILE* out, const char* name, std::int64_t v) {
  std::fprintf(out, "%s %" PRId64 "\n", name, v);
}

/// One per-worker series: `name{worker="r"} v`.
void prom_worker_u64(std::FILE* out, const char* name, int rank,
                     std::uint64_t v) {
  std::fprintf(out, "%s{worker=\"%d\"} %" PRIu64 "\n", name, rank, v);
}

/// One pool's log2 latency histogram as a native Prometheus histogram:
/// cumulative `_bucket{pool="r",le="..."}` series (one per log2 bucket up to
/// the highest non-empty one, then `+Inf`), plus exact `_sum` (seconds, from
/// HistSnapshot::sum_ns) and `_count`. Exact by construction — every bucket
/// is an exported integer and sum_ns is accumulated, not reconstructed — so
/// tests/tools/trace_check can reconcile these against per-ULT accounting.
void prom_histogram_pool(std::FILE* out, const char* name, int pool,
                         const trace::HistSnapshot& h) {
  std::uint64_t cum = 0;
  int top = -1;
  for (int b = 0; b < trace::HistSnapshot::kBuckets; ++b)
    if (h.buckets[b] != 0) top = b;
  for (int b = 0; b <= top; ++b) {
    cum += h.buckets[b];
    // Bucket 1 is a structural hole (values 0 and 1 both land in bucket 0,
    // which already spans [0, 2)): emitting it would duplicate le="2".
    if (b + 1 <= top && trace::HistSnapshot::bucket_ceil_ns(b + 1) ==
                            trace::HistSnapshot::bucket_ceil_ns(b))
      continue;
    std::fprintf(out, "%s_bucket{pool=\"%d\",le=\"%" PRId64 "\"} %" PRIu64 "\n",
                 name, pool, trace::HistSnapshot::bucket_ceil_ns(b), cum);
  }
  std::fprintf(out, "%s_bucket{pool=\"%d\",le=\"+Inf\"} %" PRIu64 "\n", name,
               pool, cum);
  // The family's unit is ns (the _ns suffix), so _sum is integral ns, not
  // Prometheus-conventional seconds — keeping every series an exact integer.
  std::fprintf(out, "%s_sum{pool=\"%d\"} %" PRIu64 "\n", name, pool, h.sum_ns);
  std::fprintf(out, "%s_count{pool=\"%d\"} %" PRIu64 "\n", name, pool, cum);
}

}  // namespace

void write_prometheus(std::FILE* out, const Snapshot& s) {
  prom_family(out, "lpt_uptime_seconds", "gauge",
              "Seconds since Runtime construction.");
  std::fprintf(out, "lpt_uptime_seconds %.3f\n",
               static_cast<double>(s.uptime_ns) / 1e9);

  prom_family(out, "lpt_workers", "gauge", "Configured worker count.");
  prom_i64(out, "lpt_workers", s.num_workers);
  prom_family(out, "lpt_active_workers", "gauge",
              "Workers not parked by thread packing.");
  prom_i64(out, "lpt_active_workers", s.active_workers);

  struct PerWorkerFamily {
    const char* name;
    const char* help;
    std::uint64_t WorkerSample::*field;
  };
  static const PerWorkerFamily kFamilies[] = {
      {"lpt_dispatches_total", "ULTs switched into by this worker.",
       &WorkerSample::dispatches},
      {"lpt_yields_total", "Voluntary yields processed.",
       &WorkerSample::yields},
      {"lpt_blocks_total", "ULT suspensions on sync primitives.",
       &WorkerSample::blocks},
      {"lpt_exits_total", "ULT completions processed.", &WorkerSample::exits},
      {"lpt_steals_total", "ULTs stolen from a remote run queue.",
       &WorkerSample::steals},
      {"lpt_preempt_ticks_sent_total",
       "Preemption signals sent toward this worker.",
       &WorkerSample::ticks_sent},
      {"lpt_preempt_handler_entries_total",
       "Preemption handler entries that found a preemptible ULT.",
       &WorkerSample::handler_entries},
      {"lpt_preempt_handler_deferred_total",
       "Handler entries deferred by a NoPreemptGuard.",
       &WorkerSample::handler_deferred},
      {"lpt_klt_degraded_ticks_total",
       "KLT-switch ticks degraded to deferred handling (pool exhausted).",
       &WorkerSample::klt_degraded_ticks},
      {"lpt_ult_faults_total",
       "ULTs terminated by fault isolation (overflow/segv/bus/exception).",
       &WorkerSample::ult_faults},
      {"lpt_stack_overflows_total",
       "Guard-page stack overflows contained by fault isolation.",
       &WorkerSample::stack_overflows},
      {"lpt_escaped_exceptions_total",
       "ULTs terminated by the exception firewall.",
       &WorkerSample::escaped_exceptions},
      {"lpt_ult_cancels_total",
       "ULTs terminated by request_cancel() or deadline expiry.",
       &WorkerSample::ult_cancels},
      {"lpt_syscall_blocks_total",
       "Annotated blocking-syscall regions entered (lpt::io).",
       &WorkerSample::syscall_blocks},
  };
  for (const PerWorkerFamily& f : kFamilies) {
    prom_family(out, f.name, "counter", f.help);
    for (const WorkerSample& w : s.workers)
      prom_worker_u64(out, f.name, w.rank, w.*(f.field));
  }

  prom_family(out, "lpt_preemptions_total",
              "counter", "Completed preemptions by mechanism.");
  for (const WorkerSample& w : s.workers) {
    std::fprintf(out,
                 "lpt_preemptions_total{worker=\"%d\",kind=\"signal_yield\"} "
                 "%" PRIu64 "\n",
                 w.rank, w.preempt_signal_yield);
    std::fprintf(out,
                 "lpt_preemptions_total{worker=\"%d\",kind=\"klt_switch\"} "
                 "%" PRIu64 "\n",
                 w.rank, w.preempt_klt_switch);
  }

  prom_family(out, "lpt_run_queue_depth", "gauge",
              "Runnable ULTs queued per worker at scrape time.");
  for (const WorkerSample& w : s.workers)
    std::fprintf(out, "lpt_run_queue_depth{worker=\"%d\"} %" PRId64 "\n",
                 w.rank, w.queue_depth);

  prom_family(out, "lpt_worker_time_in_state_seconds_total", "counter",
              "Sampled wall time per worker state (watchdog-tick resolution).");
  for (const WorkerSample& w : s.workers)
    for (int i = 0; i < kWorkerStateCount; ++i)
      std::fprintf(
          out,
          "lpt_worker_time_in_state_seconds_total{worker=\"%d\",state=\"%s\"} "
          "%.3f\n",
          w.rank, worker_state_name(static_cast<WorkerState>(i)),
          static_cast<double>(w.time_in_state_ns[i]) / 1e9);

  prom_family(out, "lpt_ults_spawned_total", "counter", "ULTs ever spawned.");
  prom_u64(out, "lpt_ults_spawned_total", s.ults_spawned);
  prom_family(out, "lpt_ults_live", "gauge",
              "ULTs spawned but not yet finished.");
  prom_i64(out, "lpt_ults_live", s.ults_live);

  prom_family(out, "lpt_klts_created_total", "counter",
              "Kernel-level threads ever created.");
  prom_u64(out, "lpt_klts_created_total", s.klts_created);
  prom_family(out, "lpt_klts_on_demand_total", "counter",
              "KLTs created on demand (pool miss).");
  prom_u64(out, "lpt_klts_on_demand_total", s.klts_on_demand);
  prom_family(out, "lpt_klt_create_failures_total", "counter",
              "KLT creation attempts that failed.");
  prom_u64(out, "lpt_klt_create_failures_total", s.klt_create_failures);
  prom_family(out, "lpt_klt_pool_idle", "gauge",
              "Parked spare KLTs available for KLT-switching.");
  prom_i64(out, "lpt_klt_pool_idle", s.klt_pool_idle);

  prom_family(out, "lpt_stack_pool_cached", "gauge",
              "ULT stacks cached in the stack pool.");
  prom_u64(out, "lpt_stack_pool_cached", s.stacks_cached);
  prom_family(out, "lpt_stacks_shed_total", "counter",
              "Cached stacks shed under memory pressure.");
  prom_u64(out, "lpt_stacks_shed_total", s.stacks_shed);
  prom_family(out, "lpt_spawn_stack_failures_total", "counter",
              "spawn() refusals after stack allocation failed.");
  prom_u64(out, "lpt_spawn_stack_failures_total", s.spawn_stack_failures);
  prom_family(out, "lpt_klts_retired_total", "counter",
              "Poisoned KLTs retired after a contained fault.");
  prom_u64(out, "lpt_klts_retired_total", s.klts_retired);
  prom_family(out, "lpt_stacks_quarantined_total", "counter",
              "Faulted ULT stacks scrubbed and re-guarded.");
  prom_u64(out, "lpt_stacks_quarantined_total", s.stacks_quarantined);
  prom_family(out, "lpt_stack_near_overflows_total", "counter",
              "Stack releases with a watermark within a page of the guard.");
  prom_u64(out, "lpt_stack_near_overflows_total", s.stack_near_overflows);
  prom_family(out, "lpt_stack_watermark_max_bytes", "gauge",
              "Deepest sampled ULT stack use since startup.");
  prom_u64(out, "lpt_stack_watermark_max_bytes", s.stack_watermark_max);
  prom_family(out, "lpt_stack_size_bytes", "gauge",
              "Effective default ULT stack size (after LPT_STACK_SIZE).");
  prom_u64(out, "lpt_stack_size_bytes", s.stack_size_bytes);

  prom_family(out, "lpt_posix_timer_fallbacks_total", "counter",
              "Per-worker POSIX timers degraded to monitor delivery.");
  prom_u64(out, "lpt_posix_timer_fallbacks_total", s.posix_timer_fallbacks);
  prom_family(out, "lpt_faults_injected_total", "counter",
              "Faults injected by the LPT_FAULT harness.");
  prom_u64(out, "lpt_faults_injected_total", s.faults_injected);

  prom_family(out, "lpt_watchdog_checks_total", "counter",
              "Watchdog poll passes completed.");
  prom_u64(out, "lpt_watchdog_checks_total", s.watchdog_checks);
  prom_family(out, "lpt_watchdog_flags_total", "counter",
              "Watchdog flag episodes by kind.");
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"runnable_starvation\"} %" PRIu64
               "\n",
               s.watchdog_runnable_starvation);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"worker_stall\"} %" PRIu64 "\n",
               s.watchdog_worker_stall);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"quantum_overrun\"} %" PRIu64
               "\n",
               s.watchdog_quantum_overrun);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"fault_storm\"} %" PRIu64 "\n",
               s.watchdog_fault_storm);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"syscall_blocked\"} %" PRIu64
               "\n",
               s.watchdog_syscall_blocked);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"deadlock\"} %" PRIu64 "\n",
               s.watchdog_deadlock);
  std::fprintf(out,
               "lpt_watchdog_flags_total{kind=\"abandoned_lock\"} %" PRIu64
               "\n",
               s.watchdog_abandoned_lock);
  prom_family(out, "lpt_remediations_total", "counter",
              "Self-healing remediation actions taken, by kind.");
  std::fprintf(out, "lpt_remediations_total{kind=\"retick\"} %" PRIu64 "\n",
               s.remediations_retick);
  std::fprintf(out, "lpt_remediations_total{kind=\"cancel\"} %" PRIu64 "\n",
               s.remediations_cancel);
  std::fprintf(out,
               "lpt_remediations_total{kind=\"klt_replace\"} %" PRIu64 "\n",
               s.remediations_klt_replace);
  std::fprintf(out,
               "lpt_remediations_total{kind=\"deadlock_break\"} %" PRIu64 "\n",
               s.remediations_deadlock_break);
  prom_family(out, "lpt_deadlock_cycles_total", "counter",
              "Deadlock cycles confirmed by the detector "
              "(== deadlock_break remediations + self deadlocks "
              "when remediation is on).");
  prom_u64(out, "lpt_deadlock_cycles_total", s.deadlock_cycles);
  prom_family(out, "lpt_self_deadlocks_total", "counter",
              "Self-deadlocks caught synchronously at lock().");
  prom_u64(out, "lpt_self_deadlocks_total", s.self_deadlocks);
  prom_family(out, "lpt_abandoned_locks_total", "counter",
              "ULTs that ended while still holding a tracked lock.");
  prom_u64(out, "lpt_abandoned_locks_total", s.abandoned_locks);
  prom_family(out, "lpt_abandoned_released_total", "counter",
              "Abandoned locks force-released (LPT_ABANDON_RELEASE).");
  prom_u64(out, "lpt_abandoned_released_total", s.abandoned_released);
  prom_family(out, "lpt_parked_waiters", "gauge",
              "ULTs registered in the parking registry at scrape time.");
  prom_i64(out, "lpt_parked_waiters", s.parked_waiters);
  prom_family(out, "lpt_syscall_compensations_total", "counter",
              "Wedge-sentinel compensation outcomes "
              "(activated == reabsorbed + saturated after quiescing).");
  std::fprintf(out,
               "lpt_syscall_compensations_total{outcome=\"activated\"} %" PRIu64
               "\n",
               s.syscall_comp_activated);
  std::fprintf(
      out,
      "lpt_syscall_compensations_total{outcome=\"reabsorbed\"} %" PRIu64 "\n",
      s.syscall_comp_reabsorbed);
  std::fprintf(
      out,
      "lpt_syscall_compensations_total{outcome=\"saturated\"} %" PRIu64 "\n",
      s.syscall_comp_saturated);

  prom_family(out, "lpt_trace_events_total", "counter",
              "Events recorded by the tracer (0 when tracing is off).");
  prom_u64(out, "lpt_trace_events_total", s.trace_events);
  prom_family(out, "lpt_trace_dropped_total", "counter",
              "Events dropped by full trace rings.");
  prom_u64(out, "lpt_trace_dropped_total", s.trace_dropped);

  // Causal scheduling-delay histograms (tracer pass-through; absent when
  // tracing is off so scrapes stay small on untraced runs).
  if (!s.pool_sched_delay_ns.empty()) {
    prom_family(out, "lpt_sched_delay_ns", "histogram",
                "Ready to dispatch scheduling delay per pool, ns (log2 "
                "buckets; tracing only).");
    for (std::size_t r = 0; r < s.pool_sched_delay_ns.size(); ++r)
      prom_histogram_pool(out, "lpt_sched_delay_ns", static_cast<int>(r),
                          s.pool_sched_delay_ns[r]);
  }
  if (!s.pool_spawn_latency_ns.empty()) {
    prom_family(out, "lpt_spawn_latency_ns", "histogram",
                "Spawn to first dispatch latency per pool, ns (log2 buckets; "
                "tracing only).");
    for (std::size_t r = 0; r < s.pool_spawn_latency_ns.size(); ++r)
      prom_histogram_pool(out, "lpt_spawn_latency_ns", static_cast<int>(r),
                          s.pool_spawn_latency_ns[r]);
  }

  prom_family(out, "lpt_prof_enabled", "gauge",
              "1 when the continuous profiler is armed.");
  prom_i64(out, "lpt_prof_enabled", s.prof_enabled ? 1 : 0);
  prom_family(out, "lpt_prof_sample_invocations_total", "counter",
              "On-CPU sampling hook firings (0 when profiling is off).");
  prom_u64(out, "lpt_prof_sample_invocations_total",
           s.prof_sample_invocations);
  prom_family(out, "lpt_prof_samples_recorded_total", "counter",
              "On-CPU samples committed to the sample rings.");
  prom_u64(out, "lpt_prof_samples_recorded_total", s.prof_samples_recorded);
  prom_family(out, "lpt_prof_samples_dropped_total", "counter",
              "On-CPU samples dropped (ring full or no ring).");
  prom_u64(out, "lpt_prof_samples_dropped_total", s.prof_samples_dropped);
  prom_family(out, "lpt_prof_offcpu_waits_total", "counter",
              "Off-CPU wait intervals attributed to a wait site.");
  prom_u64(out, "lpt_prof_offcpu_waits_total", s.prof_offcpu_waits);
  prom_family(out, "lpt_prof_offcpu_seconds_total", "counter",
              "Total attributed off-CPU blocked time.");
  std::fprintf(out, "lpt_prof_offcpu_seconds_total %.6f\n",
               static_cast<double>(s.prof_offcpu_ns) / 1e9);
  prom_family(out, "lpt_prof_lock_acquires_total", "counter",
              "Acquire attempts on profiled mutexes.");
  prom_u64(out, "lpt_prof_lock_acquires_total", s.prof_lock_acquires);
  prom_family(out, "lpt_prof_lock_contended_total", "counter",
              "Profiled mutex acquires that had to park.");
  prom_u64(out, "lpt_prof_lock_contended_total", s.prof_lock_contended);
  prom_family(out, "lpt_prof_contention_chains_total", "counter",
              "Waiters parked behind a holder that was itself off-CPU.");
  prom_u64(out, "lpt_prof_contention_chains_total",
           s.prof_contention_chains);
}

void write_json(std::FILE* out, const Snapshot& s) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"taken_ns\": %" PRId64 ",\n", s.taken_ns);
  std::fprintf(out, "  \"uptime_ns\": %" PRId64 ",\n", s.uptime_ns);
  std::fprintf(out, "  \"num_workers\": %d,\n", s.num_workers);
  std::fprintf(out, "  \"active_workers\": %d,\n", s.active_workers);
  std::fprintf(out, "  \"totals\": {\n");
  std::fprintf(out, "    \"dispatches\": %" PRIu64 ",\n", s.dispatches);
  std::fprintf(out, "    \"yields\": %" PRIu64 ",\n", s.yields);
  std::fprintf(out, "    \"blocks\": %" PRIu64 ",\n", s.blocks);
  std::fprintf(out, "    \"exits\": %" PRIu64 ",\n", s.exits);
  std::fprintf(out, "    \"steals\": %" PRIu64 ",\n", s.steals);
  std::fprintf(out, "    \"preempt_signal_yield\": %" PRIu64 ",\n",
               s.preempt_signal_yield);
  std::fprintf(out, "    \"preempt_klt_switch\": %" PRIu64 ",\n",
               s.preempt_klt_switch);
  std::fprintf(out, "    \"preemptions\": %" PRIu64 ",\n", s.preemptions);
  std::fprintf(out, "    \"ticks_sent\": %" PRIu64 ",\n", s.ticks_sent);
  std::fprintf(out, "    \"handler_entries\": %" PRIu64 ",\n",
               s.handler_entries);
  std::fprintf(out, "    \"handler_deferred\": %" PRIu64 ",\n",
               s.handler_deferred);
  std::fprintf(out, "    \"klt_degraded_ticks\": %" PRIu64 ",\n",
               s.klt_degraded_ticks);
  std::fprintf(out, "    \"ult_faults\": %" PRIu64 ",\n", s.ult_faults);
  std::fprintf(out, "    \"stack_overflows\": %" PRIu64 ",\n",
               s.stack_overflows);
  std::fprintf(out, "    \"escaped_exceptions\": %" PRIu64 ",\n",
               s.escaped_exceptions);
  std::fprintf(out, "    \"ult_cancels\": %" PRIu64 ",\n", s.ult_cancels);
  std::fprintf(out, "    \"syscall_blocks\": %" PRIu64 ",\n",
               s.syscall_blocks);
  std::fprintf(out, "    \"tick_effectiveness\": %.6f,\n",
               s.tick_effectiveness());
  std::fprintf(out, "    \"switch_rate\": %.6f,\n", s.switch_rate());
  std::fprintf(out, "    \"run_queue_depth\": %" PRId64 "\n",
               s.run_queue_depth);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"ults\": {\"spawned\": %" PRIu64
                    ", \"live\": %" PRId64 "},\n",
               s.ults_spawned, s.ults_live);
  std::fprintf(out,
               "  \"klts\": {\"created\": %" PRIu64 ", \"on_demand\": %" PRIu64
               ", \"create_failures\": %" PRIu64 ", \"pool_idle\": %" PRId64
               "},\n",
               s.klts_created, s.klts_on_demand, s.klt_create_failures,
               s.klt_pool_idle);
  std::fprintf(out,
               "  \"stacks\": {\"cached\": %" PRIu64 ", \"shed\": %" PRIu64
               ", \"spawn_failures\": %" PRIu64 ", \"quarantined\": %" PRIu64
               ", \"near_overflows\": %" PRIu64 ", \"watermark_max\": %" PRIu64
               ", \"stack_size\": %" PRIu64 "},\n",
               s.stacks_cached, s.stacks_shed, s.spawn_stack_failures,
               s.stacks_quarantined, s.stack_near_overflows,
               s.stack_watermark_max, s.stack_size_bytes);
  std::fprintf(out, "  \"faults\": {\"klts_retired\": %" PRIu64 "},\n",
               s.klts_retired);
  std::fprintf(out,
               "  \"degradation\": {\"posix_timer_fallbacks\": %" PRIu64
               ", \"faults_injected\": %" PRIu64 "},\n",
               s.posix_timer_fallbacks, s.faults_injected);
  std::fprintf(out,
               "  \"watchdog\": {\"checks\": %" PRIu64
               ", \"runnable_starvation\": %" PRIu64
               ", \"worker_stall\": %" PRIu64 ", \"quantum_overrun\": %" PRIu64
               ", \"fault_storm\": %" PRIu64
               ", \"syscall_blocked\": %" PRIu64
               ", \"deadlock\": %" PRIu64
               ", \"abandoned_lock\": %" PRIu64 "},\n",
               s.watchdog_checks, s.watchdog_runnable_starvation,
               s.watchdog_worker_stall, s.watchdog_quantum_overrun,
               s.watchdog_fault_storm, s.watchdog_syscall_blocked,
               s.watchdog_deadlock, s.watchdog_abandoned_lock);
  std::fprintf(out,
               "  \"remediations\": {\"retick\": %" PRIu64
               ", \"cancel\": %" PRIu64 ", \"klt_replace\": %" PRIu64
               ", \"deadlock_break\": %" PRIu64 "},\n",
               s.remediations_retick, s.remediations_cancel,
               s.remediations_klt_replace, s.remediations_deadlock_break);
  std::fprintf(out,
               "  \"deadlock\": {\"cycles\": %" PRIu64
               ", \"self_deadlocks\": %" PRIu64
               ", \"abandoned_locks\": %" PRIu64
               ", \"abandoned_released\": %" PRIu64
               ", \"parked_waiters\": %" PRId64 "},\n",
               s.deadlock_cycles, s.self_deadlocks, s.abandoned_locks,
               s.abandoned_released, s.parked_waiters);
  std::fprintf(out,
               "  \"syscall\": {\"blocks\": %" PRIu64
               ", \"comp_activated\": %" PRIu64
               ", \"comp_reabsorbed\": %" PRIu64
               ", \"comp_saturated\": %" PRIu64 "},\n",
               s.syscall_blocks, s.syscall_comp_activated,
               s.syscall_comp_reabsorbed, s.syscall_comp_saturated);
  std::fprintf(out,
               "  \"trace\": {\"enabled\": %s, \"events\": %" PRIu64
               ", \"dropped\": %" PRIu64 "},\n",
               s.trace_enabled ? "true" : "false", s.trace_events,
               s.trace_dropped);
  auto json_pool_hists = [&](const char* key,
                             const std::vector<trace::HistSnapshot>& pools) {
    std::fprintf(out, "  \"%s\": [", key);
    for (std::size_t r = 0; r < pools.size(); ++r) {
      const trace::HistSnapshot& h = pools[r];
      std::fprintf(out,
                   "%s{\"pool\": %zu, \"count\": %" PRIu64
                   ", \"sum_ns\": %" PRIu64
                   ", \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f}",
                   r == 0 ? "" : ", ", r, h.count(), h.sum_ns,
                   h.percentile_ns(50), h.percentile_ns(99),
                   h.percentile_ns(99.9));
    }
    std::fprintf(out, "],\n");
  };
  json_pool_hists("sched_delay_ns", s.pool_sched_delay_ns);
  json_pool_hists("spawn_latency_ns", s.pool_spawn_latency_ns);
  std::fprintf(out,
               "  \"prof\": {\"enabled\": %s, \"sample_invocations\": %" PRIu64
               ", \"samples_recorded\": %" PRIu64
               ", \"samples_dropped\": %" PRIu64
               ", \"offcpu_waits\": %" PRIu64 ", \"offcpu_ns\": %" PRIu64
               ", \"lock_acquires\": %" PRIu64
               ", \"lock_contended\": %" PRIu64
               ", \"contention_chains\": %" PRIu64 "},\n",
               s.prof_enabled ? "true" : "false", s.prof_sample_invocations,
               s.prof_samples_recorded, s.prof_samples_dropped,
               s.prof_offcpu_waits, s.prof_offcpu_ns, s.prof_lock_acquires,
               s.prof_lock_contended, s.prof_contention_chains);
  std::fprintf(out, "  \"workers\": [\n");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerSample& w = s.workers[i];
    std::fprintf(
        out,
        "    {\"rank\": %d, \"state\": \"%s\", \"parked\": %s, "
        "\"queue_depth\": %" PRId64 ", \"dispatches\": %" PRIu64
        ", \"yields\": %" PRIu64 ", \"blocks\": %" PRIu64
        ", \"exits\": %" PRIu64 ", \"steals\": %" PRIu64
        ", \"preempt_signal_yield\": %" PRIu64
        ", \"preempt_klt_switch\": %" PRIu64 ", \"ticks_sent\": %" PRIu64
        ", \"handler_entries\": %" PRIu64 ", \"handler_deferred\": %" PRIu64
        ", \"klt_degraded_ticks\": %" PRIu64
        ", \"posix_timer_fallback\": %s, \"time_in_state_ns\": "
        "{\"scheduling\": %" PRIu64 ", \"running\": %" PRIu64
        ", \"idle\": %" PRIu64 ", \"parked\": %" PRIu64 "}}%s\n",
        w.rank, worker_state_name(static_cast<WorkerState>(w.state)),
        w.parked ? "true" : "false", w.queue_depth, w.dispatches, w.yields,
        w.blocks, w.exits, w.steals, w.preempt_signal_yield,
        w.preempt_klt_switch, w.ticks_sent, w.handler_entries,
        w.handler_deferred, w.klt_degraded_ticks,
        w.posix_timer_fallback ? "true" : "false", w.time_in_state_ns[0],
        w.time_in_state_ns[1], w.time_in_state_ns[2], w.time_in_state_ns[3],
        i + 1 < s.workers.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

PublishConfig resolve_publish_config(PublishConfig base) {
  if (const char* f = std::getenv("LPT_METRICS_FILE"); f != nullptr)
    base.file = f;
  if (const char* p = std::getenv("LPT_METRICS_PERIOD_MS");
      p != nullptr && *p != '\0') {
    char* end = nullptr;
    const long long ms = std::strtoll(p, &end, 10);
    if (end != p && *end == '\0' && ms > 0) base.period_ms = ms;
  }
  if (base.period_ms <= 0) base.period_ms = 1000;
  return base;
}

Format format_for_path(const std::string& path) {
  static constexpr char kExt[] = ".json";
  static constexpr std::size_t kExtLen = sizeof(kExt) - 1;
  if (path.size() >= kExtLen &&
      path.compare(path.size() - kExtLen, kExtLen, kExt) == 0)
    return Format::kJson;
  return Format::kPrometheus;
}

}  // namespace lpt::metrics
