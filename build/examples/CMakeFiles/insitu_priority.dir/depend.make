# Empty dependencies file for insitu_priority.
# This may be replaced when dependencies are built.
