// Standalone validator for a profiler export — the check.sh smoke runs a
// workload with LPT_PROF=1 and LPT_PROF_FILE set, then feeds the result
// through this binary so the end-to-end profiling path (env config ->
// collectors -> atomic rewrite -> folded/JSON export) is gated in CI without
// gtest. With an optional metrics file the profile's accounting headers are
// also cross-checked against the Prometheus counters the same run published:
// both views come from the same atomics after the runtime quiesced, so any
// disagreement is an exporter bug. Exit 0 on a clean, reconciled profile.
#include <cstdint>
#include <cstdio>
#include <string>

#include "support/prof_parser.hpp"
#include "support/prom_parser.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Compare one profile header against the matching published counter.
int cross_check(const lpt::promtest::Parsed& prom, const char* family,
                std::uint64_t profile_value) {
  if (!prom.has_family(family)) {
    std::fprintf(stderr, "prof_check: metrics family %s missing\n", family);
    return 1;
  }
  const double metric = prom.sum(family);
  if (metric != static_cast<double>(profile_value)) {
    std::fprintf(stderr,
                 "prof_check: %s = %.0f but profile header says %llu\n",
                 family, metric,
                 static_cast<unsigned long long>(profile_value));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr, "usage: %s <profile-file> [metrics-file]\n", argv[0]);
    return 2;
  }
  std::string text;
  if (!read_file(argv[1], &text)) {
    std::fprintf(stderr, "prof_check: cannot open %s\n", argv[1]);
    return 2;
  }
  if (text.empty()) {
    std::fprintf(stderr, "prof_check: %s is empty\n", argv[1]);
    return 1;
  }

  int rc = 0;

  // Same format dispatch as the exporter (prof.cpp pick_format).
  if (ends_with(argv[1], ".json")) {
    const lpt::proftest::JsonParsed p = lpt::proftest::parse_json(text);
    for (const std::string& e : p.errors) {
      std::fprintf(stderr, "prof_check: %s\n", e.c_str());
      rc = 1;
    }
    if (rc == 0)
      std::printf("prof_check: %s ok (json)\n", argv[1]);
    if (argc == 3)
      std::fprintf(stderr,
                   "prof_check: note: metrics cross-check needs the folded "
                   "format, skipping\n");
    return rc;
  }

  const lpt::proftest::FoldedParsed p = lpt::proftest::parse_folded(text);
  for (const std::string& e : p.errors) {
    std::fprintf(stderr, "prof_check: %s\n", e.c_str());
    rc = 1;
  }

  if (argc == 3 && rc == 0) {
    std::string mtext;
    if (!read_file(argv[2], &mtext)) {
      std::fprintf(stderr, "prof_check: cannot open %s\n", argv[2]);
      return 2;
    }
    const lpt::promtest::Parsed prom = lpt::promtest::parse(mtext);
    for (const std::string& e : prom.errors) {
      std::fprintf(stderr, "prof_check: metrics: %s\n", e.c_str());
      rc = 1;
    }
    rc |= cross_check(prom, "lpt_prof_sample_invocations_total",
                      p.header_u64("invocations"));
    rc |= cross_check(prom, "lpt_prof_samples_recorded_total",
                      p.header_u64("recorded"));
    rc |= cross_check(prom, "lpt_prof_samples_dropped_total",
                      p.header_u64("dropped"));
    rc |= cross_check(prom, "lpt_prof_offcpu_waits_total",
                      p.header_u64("offcpu_waits"));
    rc |= cross_check(prom, "lpt_prof_lock_acquires_total",
                      p.header_u64("lock_acquires"));
    rc |= cross_check(prom, "lpt_prof_lock_contended_total",
                      p.header_u64("lock_contended"));
    rc |= cross_check(prom, "lpt_prof_contention_chains_total",
                      p.header_u64("contention_chains"));
    if (!prom.has_family("lpt_prof_enabled") ||
        prom.sum("lpt_prof_enabled") != 1.0) {
      std::fprintf(stderr, "prof_check: lpt_prof_enabled is not 1\n");
      rc = 1;
    }
  }

  if (rc == 0)
    std::printf(
        "prof_check: %s ok (mode %s, %zu stacks, %llu samples, %llu waits)\n",
        argv[1], p.mode().c_str(), p.stacks.size(),
        static_cast<unsigned long long>(p.header_u64("recorded")),
        static_cast<unsigned long long>(p.header_u64("offcpu_waits")));
  return rc;
}
