file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_sync.dir/runtime/runtime_sync_test.cpp.o"
  "CMakeFiles/test_runtime_sync.dir/runtime/runtime_sync_test.cpp.o.d"
  "test_runtime_sync"
  "test_runtime_sync.pdb"
  "test_runtime_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
