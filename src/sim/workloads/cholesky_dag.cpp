#include "sim/workloads/cholesky_dag.hpp"

#include <deque>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace lpt::sim {

namespace {

enum class TaskKind : std::uint8_t { kPotrf, kTrsm, kSyrk, kGemm };

struct Task {
  TaskKind kind;
  double flops;
  int deps_remaining = 0;
  std::vector<int> dependents;
};

/// The task graph of a right-looking tiled Cholesky (PLASMA-style):
///   potrf(k);  trsm(m,k) m>k;  syrk(m,k) m>k;  gemm(m,n,k) m>n>k
/// with the classic dependences (updates to one tile serialize).
struct TaskGraph {
  explicit TaskGraph(int T, int b) : tiles(T) {
    const double b3 = static_cast<double>(b) * b * b;
    potrf_id.assign(T, -1);
    trsm_id.assign(T * T, -1);
    syrk_id.assign(T * T, -1);
    gemm_id.assign(T * T * T, -1);

    for (int k = 0; k < T; ++k) {
      potrf_id[k] = add(TaskKind::kPotrf, b3 / 3.0);
      for (int m = k + 1; m < T; ++m) trsm_id[m * T + k] = add(TaskKind::kTrsm, b3);
      for (int m = k + 1; m < T; ++m) syrk_id[m * T + k] = add(TaskKind::kSyrk, b3);
      for (int m = k + 2; m < T; ++m)
        for (int n = k + 1; n < m; ++n)
          gemm_id[(m * T + n) * T + k] = add(TaskKind::kGemm, 2.0 * b3);
    }

    auto edge = [&](int from, int to) {
      tasks[from].dependents.push_back(to);
      tasks[to].deps_remaining += 1;
    };
    for (int k = 0; k < T; ++k) {
      if (k > 0) edge(syrk_id[k * T + (k - 1)], potrf_id[k]);
      for (int m = k + 1; m < T; ++m) {
        edge(potrf_id[k], trsm_id[m * T + k]);
        if (k > 0) edge(gemm_id[(m * T + k) * T + (k - 1)], trsm_id[m * T + k]);
        edge(trsm_id[m * T + k], syrk_id[m * T + k]);
        if (k > 0) edge(syrk_id[m * T + (k - 1)], syrk_id[m * T + k]);
        for (int n = k + 1; n < m; ++n) {
          edge(trsm_id[m * T + k], gemm_id[(m * T + n) * T + k]);
          edge(trsm_id[n * T + k], gemm_id[(m * T + n) * T + k]);
          if (k > 0)
            edge(gemm_id[(m * T + n) * T + (k - 1)], gemm_id[(m * T + n) * T + k]);
        }
      }
    }
  }

  int add(TaskKind kind, double flops) {
    tasks.push_back(Task{kind, flops, 0, {}});
    return static_cast<int>(tasks.size()) - 1;
  }

  int tiles;
  std::vector<Task> tasks;
  std::vector<int> potrf_id, trsm_id, syrk_id, gemm_id;
};

struct RunState;

/// Inner-team chunk: compute a share of the BLAS call, arrive at the team's
/// busy-wait barrier, wait for the rest, finish.
class ChunkThread final : public SimThread {
 public:
  ChunkThread(RunState* st, struct TeamState* team, Time chunk, WaitMode barrier)
      : st_(st), team_(team), chunk_(chunk), barrier_(barrier) {}
  SimAction next(SimUltRuntime& rt) override;
  void on_finish(SimUltRuntime& rt) override;

 private:
  RunState* st_;
  struct TeamState* team_;
  Time chunk_;
  WaitMode barrier_;
  int phase_ = 0;
};

/// Outer task: spawns the inner team, computes its own chunk, waits at the
/// team barrier, then resolves DAG dependences.
class TaskThread final : public SimThread {
 public:
  TaskThread(RunState* st, int task_id) : st_(st), task_id_(task_id) {}
  SimAction next(SimUltRuntime& rt) override;
  void on_finish(SimUltRuntime& rt) override;

 private:
  RunState* st_;
  int task_id_;
  struct TeamState* team_ = nullptr;
  int phase_ = 0;
};

struct TeamState {
  SimFlag done;
  int remaining = 0;
  void arrive(SimUltRuntime& rt) {
    if (--remaining == 0) done.set(rt);
  }
};

struct RunState {
  TaskGraph* graph = nullptr;
  const CholeskyConfig* cfg = nullptr;
  SimUltRuntime* rt = nullptr;
  double per_core_flops_per_ns = 28.0;  // == gflops_per_core
  bool nested = true;
  WaitMode barrier_mode = WaitMode::kSpin;
  SimPreempt preempt = SimPreempt::kNone;
  Time helper_wake_cost = 0;  // IOMP hot-team wake latency per helper

  std::deque<int> ready;
  int active = 0;
  int slots = 8;  ///< concurrent-task cap (IOMP: 8; BOLT: unbounded)
  std::vector<std::unique_ptr<TeamState>> teams;  // keep alive until run ends

  Time task_duration_ns(int id) const {
    const double flops = graph->tasks[id].flops;
    const int ways = nested ? cfg->inner_threads : 1;
    return static_cast<Time>(flops / (per_core_flops_per_ns * ways));
  }

  void schedule_ready() {
    while (active < slots && !ready.empty()) {
      const int id = ready.front();
      ready.pop_front();
      active += 1;
      auto t = std::make_unique<TaskThread>(this, id);
      t->preempt = preempt;
      rt->spawn(std::move(t));
    }
  }

  void task_finished(int id, SimUltRuntime& r) {
    active -= 1;
    for (int dep : graph->tasks[id].dependents) {
      if (--graph->tasks[dep].deps_remaining == 0) ready.push_back(dep);
    }
    (void)r;
    schedule_ready();
  }
};

SimAction ChunkThread::next(SimUltRuntime& rt) {
  switch (phase_++) {
    case 0:
      return SimAction::compute(chunk_);
    case 1:
      team_->arrive(rt);
      return SimAction::wait(&team_->done, barrier_);
    default:
      return SimAction::finish();
  }
}

void ChunkThread::on_finish(SimUltRuntime&) {}

SimAction TaskThread::next(SimUltRuntime& rt) {
  RunState& st = *st_;
  if (!st.nested) {
    switch (phase_++) {
      case 0:
        return SimAction::compute(st.task_duration_ns(task_id_));
      default:
        return SimAction::finish();
    }
  }
  switch (phase_++) {
    case 0: {
      // Fork the inner team (hot team: helpers wake, compute, spin).
      st.teams.push_back(std::make_unique<TeamState>());
      team_ = st.teams.back().get();
      team_->remaining = st.cfg->inner_threads;
      const Time chunk = st.task_duration_ns(task_id_);
      for (int i = 1; i < st.cfg->inner_threads; ++i) {
        auto h = std::make_unique<ChunkThread>(st_, team_, chunk,
                                               st.barrier_mode);
        h->preempt = st.preempt;
        h->pending_resume_cost = st.helper_wake_cost;
        rt.spawn(std::move(h));
      }
      return SimAction::compute(chunk);
    }
    case 1:
      team_->arrive(rt);
      return SimAction::wait(&team_->done, st.barrier_mode);
    default:
      return SimAction::finish();
  }
}

void TaskThread::on_finish(SimUltRuntime& rt) { st_->task_finished(task_id_, rt); }

}  // namespace

const char* cholesky_runtime_name(CholeskyRuntime r) {
  switch (r) {
    case CholeskyRuntime::kBoltNonpreemptiveNaive:
      return "BOLT (nonpreemptive, naive)";
    case CholeskyRuntime::kBoltNonpreemptiveYield:
      return "BOLT (nonpreemptive, reverse-engineered)";
    case CholeskyRuntime::kBoltPreemptive:
      return "BOLT (preemptive)";
    case CholeskyRuntime::kIompNested:
      return "IOMP";
    case CholeskyRuntime::kIompFlat:
      return "IOMP (flat)";
  }
  return "?";
}

double cholesky_total_flops(int tiles, int tile_n) {
  const double b3 =
      static_cast<double>(tile_n) * tile_n * tile_n;
  double flops = 0;
  const double T = tiles;
  flops += T * b3 / 3.0;                          // potrf
  flops += T * (T - 1) / 2.0 * b3;                // trsm
  flops += T * (T - 1) / 2.0 * b3;                // syrk
  flops += T * (T - 1) * (T - 2) / 6.0 * 2.0 * b3;  // gemm
  return flops;
}

bool mkl_saturation_deadlocks(const CostModel& cm, int cores, int calls,
                              int width, bool preemptive) {
  SimUltOptions o;
  o.num_workers = cores;
  if (preemptive) {
    o.timer = TimerStrategy::kPerWorkerAligned;
    o.interval = 1'000'000;
  }
  SimUltRuntime rt(cm, o);

  // One master per call; each spawns its helpers only once it runs, so with
  // calls >= cores every worker dispatches a master first (they are all
  // queued ahead of any helper) and then spins at the team barrier.
  struct CallState {
    std::vector<std::unique_ptr<TeamState>> teams;
    Time chunk = 2'000'000;
    int width;
    SimPreempt preempt;
  };
  CallState state;
  state.width = width;
  state.preempt = preemptive ? SimPreempt::kKltSwitch : SimPreempt::kNone;

  class Master final : public SimThread {
   public:
    explicit Master(CallState* s) : s_(s) {}
    SimAction next(SimUltRuntime& rt2) override {
      switch (phase_++) {
        case 0: {
          s_->teams.push_back(std::make_unique<TeamState>());
          team_ = s_->teams.back().get();
          team_->remaining = s_->width;
          for (int i = 1; i < s_->width; ++i) {
            auto h = std::make_unique<ChunkThread>(nullptr, team_, s_->chunk,
                                                   WaitMode::kSpin);
            h->preempt = s_->preempt;
            rt2.spawn(std::move(h));
          }
          return SimAction::compute(s_->chunk);
        }
        case 1:
          team_->arrive(rt2);
          return SimAction::wait(&team_->done, WaitMode::kSpin);
        default:
          return SimAction::finish();
      }
    }

   private:
    CallState* s_;
    TeamState* team_ = nullptr;
    int phase_ = 0;
  };

  for (int c = 0; c < calls; ++c) {
    auto m = std::make_unique<Master>(&state);
    m->preempt = state.preempt;
    rt.spawn(std::move(m));
  }
  rt.run();
  return rt.deadlocked();
}

CholeskyResult run_cholesky(const CostModel& cm, const CholeskyConfig& cfg,
                            CholeskyRuntime runtime) {
  TaskGraph graph(cfg.tiles, cfg.tile_n);

  SimUltOptions o;
  o.num_workers = cm.num_cores;
  o.seed = cfg.seed;
  o.cache_refill = cfg.cache_refill;

  RunState st;
  st.graph = &graph;
  st.cfg = &cfg;
  st.per_core_flops_per_ns = cm.gflops_per_core;
  st.nested = runtime != CholeskyRuntime::kIompFlat;

  switch (runtime) {
    case CholeskyRuntime::kBoltNonpreemptiveNaive:
      o.timer = TimerStrategy::kNone;
      st.barrier_mode = WaitMode::kSpin;
      st.preempt = SimPreempt::kNone;
      break;
    case CholeskyRuntime::kBoltNonpreemptiveYield:
      o.timer = TimerStrategy::kNone;
      st.barrier_mode = WaitMode::kSpinYield;
      st.preempt = SimPreempt::kNone;
      break;
    case CholeskyRuntime::kBoltPreemptive:
      o.timer = TimerStrategy::kPerWorkerAligned;
      o.interval = cfg.interval;
      st.barrier_mode = WaitMode::kSpin;
      st.preempt = SimPreempt::kKltSwitch;
      break;
    case CholeskyRuntime::kIompNested:
      o.os_mode = true;
      st.barrier_mode = WaitMode::kSpin;  // MKL team barrier spins; the OS
                                          // time-slices the spinners
      st.helper_wake_cost = cm.os_wake_latency;
      break;
    case CholeskyRuntime::kIompFlat:
      o.os_mode = true;
      st.helper_wake_cost = cm.os_wake_latency;
      break;
  }

  SimUltRuntime rt(cm, o);
  st.rt = &rt;

  // OpenMP tasks execute on the outer parallel region's threads (8 in the
  // paper's configuration) in both runtimes; the flat variant is a 56-way
  // parallel loop.
  st.slots = runtime == CholeskyRuntime::kIompFlat ? cm.num_cores
                                                   : cfg.outer_slots;

  st.ready.push_back(graph.potrf_id[0]);
  st.schedule_ready();

  const Time makespan = rt.run();

  CholeskyResult res;
  res.makespan = makespan;
  res.deadlocked = rt.deadlocked();
  res.preemptions = rt.total_preemptions();
  res.gflops = res.deadlocked
                   ? 0.0
                   : cholesky_total_flops(cfg.tiles, cfg.tile_n) /
                         static_cast<double>(makespan);
  return res;
}

}  // namespace lpt::sim
