// Microbenchmarks of the threading primitives (google-benchmark): the
// "about one hundred cycles" context switch (§2.1), fork/join, yield, and
// synchronization costs on this host's real runtime.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "context/context.hpp"
#include "context/stack.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

// --- raw user-level context switch ---------------------------------------

struct PingPongCtx {
  Context main_ctx;
  Context ult_ctx;
  bool stop = false;
};

void pingpong_entry(void* arg) {
  auto* pp = static_cast<PingPongCtx*>(arg);
  for (;;) context_switch(pp->ult_ctx, pp->main_ctx);
}

void BM_ContextSwitchRoundTrip(benchmark::State& state) {
  Stack stack(64 * 1024);
  PingPongCtx pp;
  pp.ult_ctx = make_context(stack.base(), stack.size(), pingpong_entry, &pp);
  for (auto _ : state) {
    context_switch(pp.main_ctx, pp.ult_ctx);  // in + out = 2 switches
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ContextSwitchRoundTrip);

// --- runtime operations ----------------------------------------------------

void BM_SpawnJoin(benchmark::State& state) {
  Runtime rt{RuntimeOptions{}};
  for (auto _ : state) {
    Thread t = rt.spawn([] {});
    t.join();
  }
}
BENCHMARK(BM_SpawnJoin);

void BM_SpawnJoinBatch64(benchmark::State& state) {
  Runtime rt{RuntimeOptions{}};
  for (auto _ : state) {
    std::vector<Thread> ts;
    ts.reserve(64);
    for (int i = 0; i < 64; ++i) ts.push_back(rt.spawn([] {}));
    for (auto& t : ts) t.join();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpawnJoinBatch64);

/// Run the benchmark's timed loop inside a ULT (the operations under test
/// are only legal in ULT context).
template <typename Body>
void run_in_ult(benchmark::State& state, Body&& body, int workers = 1) {
  RuntimeOptions o;
  o.num_workers = workers;
  Runtime rt(o);
  Thread t = rt.spawn([&] { body(state, rt); });
  t.join();
}

void BM_YieldEmptyQueue(benchmark::State& state) {
  // Yield with nothing else runnable: a scheduler round trip (2 switches +
  // pool traffic).
  run_in_ult(state, [](benchmark::State& s, Runtime&) {
    for (auto _ : s) this_thread::yield();
  });
}
BENCHMARK(BM_YieldEmptyQueue);

void BM_YieldPingPong(benchmark::State& state) {
  // Two ULTs alternating on one worker: the §2.1 "costs only about one
  // hundred cycles" path, through the full scheduler.
  run_in_ult(state, [](benchmark::State& s, Runtime& rt) {
    std::atomic<bool> stop{false};
    Thread peer = rt.spawn([&] {
      while (!stop.load(std::memory_order_relaxed)) this_thread::yield();
    });
    for (auto _ : s) this_thread::yield();
    stop.store(true);
    peer.join();
  });
}
BENCHMARK(BM_YieldPingPong);

void BM_MutexLockUnlockUncontended(benchmark::State& state) {
  run_in_ult(state, [](benchmark::State& s, Runtime&) {
    Mutex m;
    for (auto _ : s) {
      m.lock();
      m.unlock();
    }
  });
}
BENCHMARK(BM_MutexLockUnlockUncontended);

void BM_SpawnJoinFromUlt(benchmark::State& state) {
  run_in_ult(state, [](benchmark::State& s, Runtime& rt) {
    for (auto _ : s) {
      Thread t = rt.spawn([] {});
      t.join();
    }
  });
}
BENCHMARK(BM_SpawnJoinFromUlt);

void BM_BarrierTwoParties(benchmark::State& state) {
  run_in_ult(
      state,
      [](benchmark::State& s, Runtime& rt) {
        // Two barriers per round so the termination flag is published
        // between them: the peer's post-round check is then synchronized
        // with the round in which the flag was set (a single barrier would
        // race the last-arriver's flag store against the waking check).
        Barrier bar(2);
        std::atomic<bool> stop{false};
        Thread peer = rt.spawn([&] {
          for (;;) {
            bar.arrive_and_wait();
            bar.arrive_and_wait();
            if (stop.load(std::memory_order_acquire)) break;
          }
        });
        for (auto _ : s) {
          bar.arrive_and_wait();
          bar.arrive_and_wait();
        }
        bar.arrive_and_wait();
        stop.store(true, std::memory_order_release);
        bar.arrive_and_wait();
        peer.join();
        s.SetItemsProcessed(s.iterations() * 2);  // two crossings per round
      },
      2);
}
BENCHMARK(BM_BarrierTwoParties);

// --- continuous-profiler overhead (docs/observability.md, "Profiling") ----

/// run_in_ult with explicit options and SignalYield ULTs, so the piggyback
/// sampler actually fires in the profiled variants.
template <typename Body>
void run_in_ult_opts(benchmark::State& state, RuntimeOptions o, Body&& body) {
  Runtime rt(o);
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  Thread t = rt.spawn([&] { body(state, rt); }, sy);
  t.join();
}

RuntimeOptions prof_bench_opts(bool prof_on) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  o.prof.enabled = prof_on;
  return o;
}

void BM_YieldPingPongProf(benchmark::State& state) {
  // Arg 0/1 = profiler off/on, otherwise identical (timer armed, SignalYield
  // ULTs): the pair is the sampler-overhead measurement the acceptance bar
  // in docs/observability.md quotes — piggyback sampling must stay in the
  // noise, since it adds work only to ticks that already interrupt the ULT.
  run_in_ult_opts(
      state, prof_bench_opts(state.range(0) != 0),
      [](benchmark::State& s, Runtime& rt) {
        std::atomic<bool> stop{false};
        ThreadAttrs sy;
        sy.preempt = Preempt::SignalYield;
        Thread peer = rt.spawn(
            [&] {
              while (!stop.load(std::memory_order_relaxed))
                this_thread::yield();
            },
            sy);
        for (auto _ : s) this_thread::yield();
        stop.store(true);
        peer.join();
      });
  state.SetLabel(state.range(0) != 0 ? "prof=piggyback" : "prof=off");
}
BENCHMARK(BM_YieldPingPongProf)->Arg(0)->Arg(1);

void BM_MutexLockUnlockProf(benchmark::State& state) {
  // Uncontended lock/unlock with the lock-contention profiler off/on: the
  // "on" delta is the full instrumentation cost on the fast path (gate load
  // + acquire/owner/hold-start notes); "off" must match the plain
  // BM_MutexLockUnlockUncontended above.
  run_in_ult_opts(state, prof_bench_opts(state.range(0) != 0),
                  [](benchmark::State& s, Runtime&) {
                    Mutex m;
                    for (auto _ : s) {
                      m.lock();
                      m.unlock();
                    }
                  });
  state.SetLabel(state.range(0) != 0 ? "prof=on" : "prof=off");
}
BENCHMARK(BM_MutexLockUnlockProf)->Arg(0)->Arg(1);

void BM_SpawnJoinProf(benchmark::State& state) {
  run_in_ult_opts(state, prof_bench_opts(state.range(0) != 0),
                  [](benchmark::State& s, Runtime& rt) {
                    for (auto _ : s) {
                      Thread t = rt.spawn([] {});
                      t.join();
                    }
                  });
  state.SetLabel(state.range(0) != 0 ? "prof=on" : "prof=off");
}
BENCHMARK(BM_SpawnJoinProf)->Arg(0)->Arg(1);

// --- causal-accounting overhead (docs/observability.md, "Causal tracing") --

void BM_YieldPingPongTraced(benchmark::State& state) {
  // Arg 0/1 = tracer off/on. "On" buys the full lifecycle accounting —
  // ready stamps at every enqueue, episode folding at every switch, the
  // per-pool scheduling-delay histogram at every dispatch — so the pair is
  // the accounting-overhead measurement: the yield path must stay within
  // noise of the untraced run (the off path pays one relaxed flag load).
  const bool traced = state.range(0) != 0;
  RuntimeOptions o;
  o.num_workers = 1;
  o.trace.enabled = traced;
  o.trace.ring_capacity = 1u << 12;  // drops are fine: histograms still record
  Runtime rt(o);
  Thread main_ult = rt.spawn([&] {
    std::atomic<bool> stop{false};
    Thread peer = rt.spawn([&] {
      while (!stop.load(std::memory_order_relaxed)) this_thread::yield();
    });
    for (auto _ : state) this_thread::yield();
    stop.store(true);
    peer.join();
  });
  main_ult.join();
  if (traced) {
    const Runtime::Stats st = rt.stats();
    state.counters["sched_delay_p50_ns"] = st.sched_delay_ns.percentile_ns(50.0);
    state.counters["sched_delay_p99_ns"] = st.sched_delay_ns.percentile_ns(99.0);
    state.counters["sched_delay_p999_ns"] =
        st.sched_delay_ns.percentile_ns(99.9);
  }
  state.SetLabel(traced ? "trace=on" : "trace=off");
}
BENCHMARK(BM_YieldPingPongTraced)->Arg(0)->Arg(1);

void BM_SpawnJoinTraced(benchmark::State& state) {
  // Spawn→first-dispatch latency distribution, measured by the accounting
  // itself (one histogram record per ULT at its first dispatch).
  const bool traced = state.range(0) != 0;
  RuntimeOptions o;
  o.num_workers = 1;
  o.trace.enabled = traced;
  o.trace.ring_capacity = 1u << 12;
  Runtime rt(o);
  for (auto _ : state) {
    Thread t = rt.spawn([] {});
    t.join();
  }
  if (traced) {
    const Runtime::Stats st = rt.stats();
    state.counters["spawn_latency_p50_ns"] =
        st.spawn_latency_ns.percentile_ns(50.0);
    state.counters["spawn_latency_p99_ns"] =
        st.spawn_latency_ns.percentile_ns(99.0);
    state.counters["spawn_latency_p999_ns"] =
        st.spawn_latency_ns.percentile_ns(99.9);
  }
  state.SetLabel(traced ? "trace=on" : "trace=off");
}
BENCHMARK(BM_SpawnJoinTraced)->Arg(0)->Arg(1);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the same `--json <path>`
// flag as the other bench binaries by mapping it onto google-benchmark's
// native JSON reporter (--benchmark_out).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::string(argv[i]) == "--json") {
      out_flag = std::string("--benchmark_out=") + argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
