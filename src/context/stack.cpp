#include "context/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/sys.hpp"

namespace lpt {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Stack::Stack(std::size_t usable_size) {
  const std::size_t ps = page_size();
  const std::size_t usable = (usable_size + ps - 1) / ps * ps;
  const std::size_t total = usable + ps;  // + guard page
  void* p = sys::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (p == MAP_FAILED) return;  // invalid; errno says why
  LPT_CHECK(::mprotect(p, ps, PROT_NONE) == 0);
  map_ = p;
  map_size_ = total;
  base_ = static_cast<char*>(p) + ps;
  size_ = usable;
}

Stack::~Stack() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Stack::Stack(Stack&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Stack StackPool::acquire() {
  {
    SpinlockGuard g(lock_);
    if (!free_.empty()) {
      Stack s = std::move(free_.back());
      free_.pop_back();
      return s;
    }
  }
  return Stack(stack_size_);
}

Stack StackPool::try_acquire(int* err) {
  Stack s = acquire();
  if (s.valid()) return s;
  const int first_err = errno != 0 ? errno : ENOMEM;
  // Degrade: return every cached mapping to the kernel, then retry once.
  // (A cached stack of the right size would have been handed out above, so
  // reaching here means the free list held nothing useful — but a racing
  // release may have restocked it, and shedding also frees address space
  // held by other pools' churn.)
  shed_all();
  s = Stack(stack_size_);
  if (s.valid()) return s;
  if (err != nullptr) *err = errno != 0 ? errno : first_err;
  return s;
}

void StackPool::release(Stack&& s) {
  LPT_CHECK(s.valid());
  Stack drop;  // unmapped outside the lock if the cache is full
  {
    SpinlockGuard g(lock_);
    if (free_.size() < max_cached_) {
      free_.push_back(std::move(s));
      return;
    }
    ++shed_;
    drop = std::move(s);
  }
}

std::size_t StackPool::shed_all() {
  std::vector<Stack> drop;
  {
    SpinlockGuard g(lock_);
    drop.swap(free_);
    shed_ += drop.size();
  }
  return drop.size();
}

std::size_t StackPool::cached() const {
  SpinlockGuard g(lock_);
  return free_.size();
}

std::uint64_t StackPool::total_shed() const {
  SpinlockGuard g(lock_);
  return shed_;
}

}  // namespace lpt
