// Continuous-profiling demo: run a mixed workload with all three collectors
// armed (on-CPU sampling piggybacked on preemption ticks, off-CPU wait
// attribution, lock-contention profiling) and print the three views a
// profile consumer cares about: the top on-CPU ULTs, the hottest wait
// sites, and the most-contended locks. See docs/observability.md,
// "Profiling".
//
//   ./prof_viz [out.folded]         (default: prof_viz.folded)
//
// The folded file written at shutdown is flamegraph-ready:
//   grep -v '^#' prof_viz.folded | flamegraph.pl > prof.svg
// A .json argument switches to the full JSON report instead.
#include <dlfcn.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "prof/prof.hpp"
#include "runtime/lpt.hpp"
#include "runtime/sync.hpp"

using namespace lpt;

namespace {

volatile std::uint64_t g_sink;

std::string sym(std::uintptr_t pc) {
  if (pc == 0) return "?";
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr)
    return info.dli_sname;
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  o.prof.enabled = true;
  o.prof.file = argc > 1 ? argv[1] : "prof_viz.folded";

  std::printf("Running a mixed workload with the profiler armed...\n");
  {
    Runtime rt(o);

    Mutex hot;  // deliberately contended, held across a sleep once
    ThreadAttrs sy;
    sy.preempt = Preempt::SignalYield;
    std::vector<Thread> ts;

    // Compute-bound ULTs: these dominate the on-CPU samples.
    for (int i = 0; i < 3; ++i)
      ts.push_back(rt.spawn([] { g_sink = busy_work_iters(20'000'000); }, sy));

    // A holder that sleeps while holding: every waiter parked behind it is a
    // contention *chain* (blocked on an off-CPU holder).
    ts.push_back(rt.spawn([&hot] {
      hot.lock();
      this_thread::sleep_for(std::chrono::milliseconds(20));
      hot.unlock();
    }));

    // Lock-churning ULTs: contended acquires + off-CPU mutex waits.
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([&hot] {
        for (int k = 0; k < 50; ++k) {
          hot.lock();
          g_sink = busy_work_iters(5'000);
          hot.unlock();
          this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }));

    for (auto& t : ts) t.join();

    const prof::Collector& c = prof::Collector::instance();
    const prof::Totals totals = c.totals();
    std::printf("\nOn-CPU sampler (%s mode): %llu invocations = "
                "%llu recorded + %llu dropped\n",
                totals.sample_hz > 0 ? "hz" : "piggyback",
                static_cast<unsigned long long>(totals.invocations),
                static_cast<unsigned long long>(totals.recorded),
                static_cast<unsigned long long>(totals.dropped));

    std::printf("\nTop on-CPU ULTs (by samples):\n");
    const std::vector<prof::UltProfile> ults = c.oncpu_by_ult();
    for (std::size_t i = 0; i < ults.size() && i < 5; ++i)
      std::printf("  ult%-5u pool %u  %6llu samples  (%.1f%%)\n", ults[i].ult,
                  ults[i].pool,
                  static_cast<unsigned long long>(ults[i].samples),
                  totals.recorded ? 100.0 * static_cast<double>(ults[i].samples)
                                        / static_cast<double>(totals.recorded)
                                  : 0.0);

    std::printf("\nHottest wait sites (off-CPU time by callsite):\n");
    std::vector<prof::WaitSiteProfile> sites = c.offcpu_sites();
    std::sort(sites.begin(), sites.end(),
              [](const auto& a, const auto& b) {
                return a.total_ns > b.total_ns;
              });
    for (std::size_t i = 0; i < sites.size() && i < 5; ++i)
      std::printf("  %-9s %-28s %6llu waits  %8.2f ms total  p99 %.1f us\n",
                  prof::wait_kind_name(sites[i].kind),
                  sym(sites[i].site).c_str(),
                  static_cast<unsigned long long>(sites[i].count),
                  static_cast<double>(sites[i].total_ns) / 1e6,
                  sites[i].blocked_ns.percentile_ns(99.0) / 1e3);

    std::printf("\nMost-contended locks:\n");
    const std::vector<prof::LockProfile> locks = c.lock_profiles();
    for (std::size_t i = 0; i < locks.size() && i < 5; ++i)
      std::printf("  lock%-3d at %-28s %5llu acquires, %5llu contended, "
                  "%llu chains, hold p99 %.1f us, wait p99 %.1f us\n",
                  locks[i].id, sym(locks[i].site).c_str(),
                  static_cast<unsigned long long>(locks[i].acquires),
                  static_cast<unsigned long long>(locks[i].contended),
                  static_cast<unsigned long long>(locks[i].chains),
                  locks[i].hold_ns.percentile_ns(99.0) / 1e3,
                  locks[i].wait_ns.percentile_ns(99.0) / 1e3);
    if (totals.contention_chains > 0)
      std::printf("  (%llu waits parked behind an OFF-CPU holder — the "
                  "classic lock-holder-preempted pathology)\n",
                  static_cast<unsigned long long>(totals.contention_chains));
  }  // ~Runtime writes the profile

  std::printf("\nProfile written to %s", o.prof.file.c_str());
  std::printf("\n  validate:   build/tests/prof_check %s", o.prof.file.c_str());
  std::printf("\n  flamegraph: grep -v '^#' %s | flamegraph.pl > prof.svg\n",
              o.prof.file.c_str());
  std::printf("(every view above is also exported by LPT_PROF=1 + "
              "LPT_PROF_FILE in any binary — no code changes needed)\n");
  return 0;
}
