#include "sim/workloads/insitu_md.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace lpt::sim {

namespace {

struct MdState {
  const Fig9Config* cfg = nullptr;
  int workers = 0;
  Time force_share = 0;       ///< per-thread compute per step
  Time analysis_share = 0;    ///< per-analysis-thread compute
  SimPreempt analysis_preempt = SimPreempt::kNone;
  int analysis_priority = 0;
  double analysis_weight = 1.0;

  std::vector<int> arrived;
  std::vector<std::unique_ptr<SimFlag>> step_flags;

  void arrive(int step, SimUltRuntime& rt) {
    if (++arrived[step] == workers) step_flags[step]->set(rt);
  }
};

/// One force-computation chunk of a parallel region (a Kokkos/OpenMP worker).
class ForceThread final : public SimThread {
 public:
  ForceThread(MdState* st, int step) : st_(st), step_(step) {}
  SimAction next(SimUltRuntime& rt) override {
    switch (sub_++) {
      case 0:
        return SimAction::compute(st_->force_share);
      default:
        st_->arrive(step_, rt);
        return SimAction::finish();
    }
  }

 private:
  MdState* st_;
  int step_;
  int sub_ = 0;
};

/// In situ analysis over a snapshot buffer; purely parallel, low priority.
class AnalysisThread final : public SimThread {
 public:
  explicit AnalysisThread(MdState* st) : st_(st) {}
  SimAction next(SimUltRuntime&) override {
    if (sub_++ == 0) return SimAction::compute(st_->analysis_share);
    return SimAction::finish();
  }

 private:
  MdState* st_;
  int sub_ = 0;
};

/// The main thread: drives timesteps — parallel force phase, then the
/// sequential/MPI window in which every other worker is idle.
class MainThread final : public SimThread {
 public:
  explicit MainThread(MdState* st) : st_(st) {}

  SimAction next(SimUltRuntime& rt) override {
    for (;;) {
      if (step_ >= st_->cfg->steps) return SimAction::finish();
      switch (sub_) {
        case 0: {
          sub_ = 1;
          // Fork the parallel force region (one thread per worker incl. us)
          // and, on analysis steps, the 55 analysis threads over a snapshot.
          for (int i = 1; i < st_->workers; ++i) {
            auto f = std::make_unique<ForceThread>(st_, step_);
            f->home_pool = i;
            rt.spawn(std::move(f));
          }
          if (st_->cfg->with_analysis &&
              step_ % st_->cfg->analysis_interval == 0) {
            for (int i = 1; i < st_->workers; ++i) {  // "one less than cores"
              auto a = std::make_unique<AnalysisThread>(st_);
              a->priority = st_->analysis_priority;
              a->weight = st_->analysis_weight;
              a->preempt = st_->analysis_preempt;
              a->home_pool = i;
              rt.spawn(std::move(a));
            }
          }
          return SimAction::compute(st_->force_share);
        }
        case 1:
          sub_ = 2;
          st_->arrive(step_, rt);
          return SimAction::wait(st_->step_flags[step_].get(), WaitMode::kBlock);
        case 2:
          sub_ = 3;
          // Sequential portion + MPI communication: main thread only.
          return SimAction::compute(st_->cfg->comm_window);
        default:
          sub_ = 0;
          step_ += 1;
          continue;
      }
    }
  }

 private:
  MdState* st_;
  int step_ = 0;
  int sub_ = 0;
};

}  // namespace

const char* fig9_variant_name(Fig9Variant v) {
  switch (v) {
    case Fig9Variant::kPthreads:
      return "Pthreads (w/o priority)";
    case Fig9Variant::kPthreadsPriority:
      return "Pthreads (w/ priority)";
    case Fig9Variant::kArgobots:
      return "Argobots (w/o priority)";
    case Fig9Variant::kArgobotsPriority:
      return "Argobots (w/ priority)";
  }
  return "?";
}

Fig9Result run_fig9(const CostModel& cm, const Fig9Config& cfg, Fig9Variant v) {
  const bool os = v == Fig9Variant::kPthreads || v == Fig9Variant::kPthreadsPriority;

  SimUltOptions o;
  o.num_workers = cm.num_cores;
  o.seed = cfg.seed;
  if (os) {
    o.os_mode = true;
  } else {
    o.sched = SchedPolicy::kPriority;
    // Per-process timer: only analysis threads are preemptive, so idle
    // periods issue no signals at all (§4.3 uses this configuration).
    o.timer = TimerStrategy::kProcessChain;
    o.interval = cfg.interval;
  }

  SimUltRuntime rt(cm, o);

  MdState st;
  st.cfg = &cfg;
  st.workers = cm.num_cores;
  const double atoms_pp = cfg.atoms / cfg.nodes;
  st.force_share = static_cast<Time>(atoms_pp * cfg.force_ns_per_atom /
                                     st.workers);
  st.analysis_share = static_cast<Time>(atoms_pp * cfg.analysis_ns_per_atom /
                                        (st.workers - 1));
  st.analysis_priority = v == Fig9Variant::kArgobotsPriority ? 1 : 0;
  st.analysis_weight = v == Fig9Variant::kPthreadsPriority ? 0.1 : 1.0;
  st.analysis_preempt = os ? SimPreempt::kNone : SimPreempt::kSignalYield;

  st.arrived.assign(cfg.steps, 0);
  for (int s = 0; s < cfg.steps; ++s)
    st.step_flags.push_back(std::make_unique<SimFlag>());

  auto main_thread = std::make_unique<MainThread>(&st);
  main_thread->home_pool = 0;
  rt.spawn(std::move(main_thread));

  Fig9Result res;
  res.makespan = rt.run();
  res.deadlocked = rt.deadlocked();
  return res;
}

Fig9Overhead fig9_overhead(const CostModel& cm, const Fig9Config& cfg,
                           Fig9Variant v) {
  Fig9Config base_cfg = cfg;
  base_cfg.with_analysis = false;
  const Fig9Result base = run_fig9(cm, base_cfg, v);
  Fig9Config with_cfg = cfg;
  with_cfg.with_analysis = true;
  const Fig9Result with = run_fig9(cm, with_cfg, v);
  LPT_CHECK(!base.deadlocked && !with.deadlocked);
  return Fig9Overhead{
      static_cast<double>(with.makespan - base.makespan) /
          static_cast<double>(base.makespan),
      base.makespan};
}

}  // namespace lpt::sim
