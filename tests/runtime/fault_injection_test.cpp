// Graceful-degradation tests (docs/robustness.md): the runtime must survive
// injected pthread_create / timer_create / mmap failures without aborting or
// deadlocking, and report the degradation in Runtime::Stats.
//
// Workloads here use DEADLINE spinners, never flag-waiting pairs: with KLT
// creation failing, KLT-switch preemption legitimately cannot fire, and a
// busy pair that needs preemption to finish would turn degradation into a
// hang instead of a measured degraded tick.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/cpu.hpp"
#include "common/sys.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { sys::reset_faults(); }
  void TearDown() override { sys::reset_faults(); }
};

RuntimeOptions preemptive_opts(int workers, TimerKind timer, std::int64_t us) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.timer = timer;
  o.interval_us = us;
  return o;
}

void busy_spin_ms(std::int64_t ms) {
  const std::int64_t deadline = now_ns() + ms * 1'000'000;
  while (now_ns() < deadline) cpu_pause();
}

// --- tentpole acceptance: pthread_create storm under a fast KLT-switch timer

TEST_F(FaultInjection, KltCreateStormDegradesWithoutDeadlock) {
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 100));
  // Arm AFTER construction: worker hosts are mandatory, spares are not.
  // Every creator attempt now fails, so pool misses must turn into degraded
  // ticks while the spinners keep running to completion.
  ASSERT_TRUE(sys::configure_faults("pthread_create:every=1"));

  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  // A degraded tick needs the creator to saturate (~5 ms of failed backoff)
  // and then another tick to land on a still-running spinner; under CI load
  // keep feeding spinners until one is observed rather than sizing a single
  // batch to the worst case.
  const std::int64_t deadline = now_ns() + 15'000'000'000;
  do {
    std::vector<Thread> ts;
    for (int i = 0; i < 6; ++i)
      ts.push_back(rt.spawn([] { busy_spin_ms(50); }, attrs));
    for (Thread& t : ts) t.join();
  } while (rt.stats().klt_degraded_ticks == 0 && now_ns() < deadline);

  const Runtime::Stats s = rt.stats();
  EXPECT_GT(s.klt_degraded_ticks, 0u);
  EXPECT_GT(s.klt_create_failures, 0u);
  EXPECT_GT(s.faults_injected, 0u);
  sys::reset_faults();  // let shutdown proceed cleanly
}

TEST_F(FaultInjection, CreatorRecoversWhenFaultClears) {
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 200));
  ASSERT_TRUE(sys::configure_faults("pthread_create:every=1"));

  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  // Saturation needs a tick -> pool miss -> failed backoff chain (~5 ms of
  // creator backoff); under CI load ticks can starve, so keep the worker
  // busy until the chain completes instead of trusting one spin window.
  const std::int64_t sat_deadline = now_ns() + 15'000'000'000;
  while (!rt.klt_creator().saturated() && now_ns() < sat_deadline)
    rt.spawn([] { busy_spin_ms(10); }, attrs).join();
  ASSERT_TRUE(rt.klt_creator().saturated());

  // Clear the fault: the creator self-retries every 2 ms while saturated and
  // must leave degraded mode on its own.
  sys::reset_faults();
  const std::int64_t deadline = now_ns() + 5'000'000'000;
  while (rt.klt_creator().saturated() && now_ns() < deadline)
    busy_spin_ms(1);
  EXPECT_FALSE(rt.klt_creator().saturated());

  // KLT-switching works again end to end: a busy pair on one worker only
  // finishes if preemption actually parks the spinner's KLT.
  std::atomic<bool> flag{false};
  Thread a = rt.spawn(
      [&] {
        const std::int64_t d = now_ns() + 20'000'000'000;
        while (!flag.load(std::memory_order_acquire) && now_ns() < d)
          cpu_pause();
        EXPECT_TRUE(flag.load(std::memory_order_acquire));
      },
      attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
}

// --- acceptance: >= 100 injected failures across three sites, still correct

TEST_F(FaultInjection, MixedFaultStormCompletesAllWork) {
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 200));
  ASSERT_TRUE(sys::configure_faults(
      "pthread_create:every=2;mmap:every=3;pthread_sigqueue:every=5"));

  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::uint64_t spawned = 0, completed = 0, refused = 0;
  std::atomic<std::uint64_t> finished{0};
  const std::int64_t deadline = now_ns() + 30'000'000'000;
  while (sys::total_injected() < 120 && now_ns() < deadline) {
    std::vector<Thread> batch;
    for (int i = 0; i < 16; ++i) {
      Thread t = rt.spawn([&] { busy_spin_ms(2); finished.fetch_add(1); },
                          attrs);
      if (t.joinable()) {
        ++spawned;
        batch.push_back(std::move(t));
      } else {
        ++refused;  // injected mmap failure surfaced as recoverable spawn
        EXPECT_EQ(spawn_errno(), ENOMEM);
      }
    }
    for (Thread& t : batch) t.join();
    completed += batch.size();
  }

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.faults_injected, 100u);
  EXPECT_EQ(completed, spawned);               // every accepted ULT joined
  EXPECT_EQ(finished.load(), spawned);         // ...and actually ran
  EXPECT_EQ(s.spawn_stack_failures, refused);  // refusals were all recoverable
  EXPECT_GT(spawned, 0u);
  sys::reset_faults();
}

// --- timer_create failure: fall back to monitor-thread delivery ------------

TEST_F(FaultInjection, PosixTimerFailureFallsBackToMonitor) {
  // Armed BEFORE construction: every timer_create fails, so each worker must
  // degrade to the fallback after kPosixTimerFailLimit attempts, and
  // preemption must still break the busy pair.
  ASSERT_TRUE(sys::configure_faults("timer_create:every=1"));
  Runtime rt(preemptive_opts(1, TimerKind::PosixPerWorker, 1000));

  std::atomic<bool> flag{false};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  Thread a = rt.spawn(
      [&] {
        const std::int64_t d = now_ns() + 20'000'000'000;
        while (!flag.load(std::memory_order_acquire) && now_ns() < d)
          cpu_pause();
        EXPECT_TRUE(flag.load(std::memory_order_acquire))
            << "fallback timer never preempted the spinner";
      },
      attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.posix_timer_fallbacks, 1u);
  EXPECT_TRUE(s.workers[0].posix_timer_fallback);
  EXPECT_GT(rt.total_preemptions(), 0u);
  sys::reset_faults();
}

// --- stack mmap failure: recoverable spawn ---------------------------------

TEST_F(FaultInjection, StackFailureYieldsEmptyHandleAndErrno) {
  Runtime rt(preemptive_opts(1, TimerKind::None, 1000));
  ASSERT_TRUE(sys::configure_faults("mmap:every=1"));

  Thread t = rt.spawn([] {});
  EXPECT_FALSE(t.joinable());
  EXPECT_EQ(spawn_errno(), ENOMEM);
  EXPECT_FALSE(rt.spawn_detached([] {}));

  // Custom-size stacks take the same recoverable path.
  ThreadAttrs big;
  big.stack_size = 512 * 1024;
  EXPECT_FALSE(rt.spawn([] {}, big).joinable());

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.spawn_stack_failures, 3u);

  // Clear the fault: spawning works again and spawn_errno resets.
  sys::reset_faults();
  std::atomic<bool> ran{false};
  Thread ok = rt.spawn([&] { ran.store(true); });
  ASSERT_TRUE(ok.joinable());
  EXPECT_EQ(spawn_errno(), 0);
  ok.join();
  EXPECT_TRUE(ran.load());
}

TEST_F(FaultInjection, TransientStackFailureHealedByShedRetry) {
  Runtime rt(preemptive_opts(1, TimerKind::None, 1000));
  // Fail exactly the next mmap (plans count calls from arming time): the
  // spawn's first mapping attempt fails, try_acquire sheds and retries, and
  // the retry succeeds — the caller never sees the fault.
  ASSERT_TRUE(sys::configure_faults("mmap:nth=1"));
  std::atomic<bool> ran{false};
  Thread t = rt.spawn([&] { ran.store(true); });
  ASSERT_TRUE(t.joinable());
  t.join();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(rt.stats().spawn_stack_failures, 0u);
}

// --- max_klts cap: sticky degraded ticks -----------------------------------

TEST_F(FaultInjection, MaxKltsCapDegradesInsteadOfCreating) {
  RuntimeOptions o = preemptive_opts(1, TimerKind::PerWorkerAligned, 100);
  o.max_klts = 1;  // the worker host is the only KLT allowed
  Runtime rt(o);

  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  // The cap is sticky, so one tick on a running spinner suffices — but under
  // CI load ticks can starve, so retry until one lands.
  const std::int64_t deadline = now_ns() + 15'000'000'000;
  do {
    rt.spawn([] { busy_spin_ms(40); }, attrs).join();
  } while (rt.stats().klt_degraded_ticks == 0 && now_ns() < deadline);

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.klts_created, 1u);
  EXPECT_GT(s.klt_degraded_ticks, 0u);
  EXPECT_EQ(s.workers[0].preempt_klt_switch, 0u);
}

// --- shutdown hygiene: a degraded runtime restarts clean -------------------

TEST_F(FaultInjection, RuntimeRestartsCleanAfterDegradedShutdown) {
  {
    Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 100));
    ASSERT_TRUE(sys::configure_faults("pthread_create:every=1"));
    ThreadAttrs attrs;
    attrs.preempt = Preempt::KltSwitch;
    rt.spawn([] { busy_spin_ms(30); }, attrs).join();
    sys::reset_faults();
  }  // destroyed while/after being saturated

  // A fresh runtime in the same process must start healthy and KLT-switch
  // normally (KltCreator::stop drained the abandoned accounting).
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 1000));
  EXPECT_FALSE(rt.klt_creator().saturated());
  EXPECT_EQ(rt.klt_creator().pending(), 0u);
  EXPECT_EQ(rt.klt_creator().in_flight(), 0);

  std::atomic<bool> flag{false};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  Thread a = rt.spawn(
      [&] {
        const std::int64_t d = now_ns() + 20'000'000'000;
        while (!flag.load(std::memory_order_acquire) && now_ns() < d)
          cpu_pause();
        EXPECT_TRUE(flag.load(std::memory_order_acquire));
      },
      attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

// --- no faults armed: stats stay clean -------------------------------------

TEST_F(FaultInjection, CleanRunReportsNoDegradation) {
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([] { busy_spin_ms(10); }, attrs));
  for (Thread& t : ts) t.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.faults_injected, 0u);
  EXPECT_EQ(s.spawn_stack_failures, 0u);
  EXPECT_EQ(s.posix_timer_fallbacks, 0u);
}

}  // namespace
}  // namespace lpt
