// Unit tests of the metrics primitives and exporters that never touch a
// Runtime (no fiber context switches), so the whole binary is in scope for
// the ThreadSanitizer stage of scripts/check.sh — the same policy as
// test_trace_unit.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "support/prom_parser.hpp"

namespace lpt {
namespace {

std::string render_prom(const metrics::Snapshot& s) {
  std::FILE* f = std::tmpfile();
  metrics::write_prometheus(f, s);
  std::fflush(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string render_json(const metrics::Snapshot& s) {
  std::FILE* f = std::tmpfile();
  metrics::write_json(f, s);
  std::fflush(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// A synthetic two-worker snapshot with every field distinct, so a writer
/// that swaps two fields fails the round trip.
metrics::Snapshot sample_snapshot() {
  metrics::Snapshot s;
  s.taken_ns = 123;
  s.uptime_ns = 2'500'000'000;
  s.num_workers = 2;
  s.active_workers = 2;
  for (int r = 0; r < 2; ++r) {
    metrics::WorkerSample w;
    w.rank = r;
    w.dispatches = 100 + r;
    w.yields = 10 + r;
    w.blocks = 5 + r;
    w.exits = 90 + r;
    w.steals = 3 + r;
    w.preempt_signal_yield = 7 + r;
    w.preempt_klt_switch = 2 + r;
    w.ticks_sent = 50 + r;
    w.handler_entries = 40 + r;
    w.handler_deferred = 4 + r;
    w.klt_degraded_ticks = 1 + r;
    w.queue_depth = r;
    w.time_in_state_ns[1] = 1'000'000ull * (r + 1);
    s.workers.push_back(w);
  }
  s.finalize();
  s.ults_spawned = 200;
  s.ults_live = 3;
  s.klts_created = 4;
  s.klts_on_demand = 2;
  s.klt_pool_idle = 1;
  s.stacks_cached = 8;
  s.watchdog_checks = 33;
  s.watchdog_worker_stall = 1;
  return s;
}

TEST(MetricsCounters, SingleWriterCounterVisibleToReaders) {
  metrics::Counter c;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 100'000; ++i) c.inc();
    stop.store(true);
  });
  std::uint64_t last = 0;
  while (!stop.load()) {
    const std::uint64_t v = c.value();
    EXPECT_GE(v, last);  // monotonic from the reader's view
    last = v;
  }
  writer.join();
  EXPECT_EQ(c.value(), 100'000u);
}

TEST(MetricsCounters, AtomicCounterSumsAcrossThreads) {
  metrics::AtomicCounter c;
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([&] {
      for (int j = 0; j < 50'000; ++j) c.add();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), 200'000u);
}

TEST(MetricsCounters, GaugeBalancesAcrossThreads) {
  metrics::Gauge g;
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([&] {
      for (int j = 0; j < 20'000; ++j) {
        g.add(2);
        g.sub(2);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsSnapshot, WorkerSampleCopiesEveryCounter) {
  metrics::WorkerMetrics m;
  m.dispatches.inc(5);
  m.yields.inc(4);
  m.blocks.inc(3);
  m.exits.inc(2);
  m.steals.inc(1);
  m.preempt_signal_yield.inc(6);
  m.preempt_klt_switch.inc(7);
  m.ticks_sent.add(8);
  m.handler_entries.add(9);
  m.handler_deferred.add(10);
  m.klt_degraded_ticks.add(11);
  m.set_state(metrics::WorkerState::kIdle);
  m.time_in_state_ns[2].inc(42);
  const metrics::WorkerSample w = m.sample();
  EXPECT_EQ(w.dispatches, 5u);
  EXPECT_EQ(w.yields, 4u);
  EXPECT_EQ(w.blocks, 3u);
  EXPECT_EQ(w.exits, 2u);
  EXPECT_EQ(w.steals, 1u);
  EXPECT_EQ(w.preempt_signal_yield, 6u);
  EXPECT_EQ(w.preempt_klt_switch, 7u);
  EXPECT_EQ(w.ticks_sent, 8u);
  EXPECT_EQ(w.handler_entries, 9u);
  EXPECT_EQ(w.handler_deferred, 10u);
  EXPECT_EQ(w.klt_degraded_ticks, 11u);
  EXPECT_EQ(w.state, static_cast<std::uint8_t>(metrics::WorkerState::kIdle));
  EXPECT_EQ(w.time_in_state_ns[2], 42u);
  EXPECT_EQ(m.preemptions(), 13u);
}

TEST(MetricsSnapshot, FinalizeSumsWorkers) {
  const metrics::Snapshot s = sample_snapshot();
  EXPECT_EQ(s.dispatches, 201u);
  EXPECT_EQ(s.yields, 21u);
  EXPECT_EQ(s.steals, 7u);
  EXPECT_EQ(s.preemptions, s.preempt_signal_yield + s.preempt_klt_switch);
  EXPECT_EQ(s.ticks_sent, 101u);
  EXPECT_EQ(s.handler_entries, 81u);
  EXPECT_EQ(s.run_queue_depth, 1);
  EXPECT_NEAR(s.tick_effectiveness(), 81.0 / 101.0, 1e-9);
}

TEST(MetricsSnapshot, RatiosDefinedWithoutTicks) {
  metrics::Snapshot s;
  EXPECT_EQ(s.tick_effectiveness(), 0.0);
  EXPECT_EQ(s.switch_rate(), 0.0);
}

TEST(MetricsExposition, PrometheusRoundTripsThroughParser) {
  const metrics::Snapshot s = sample_snapshot();
  const std::string text = render_prom(s);
  const promtest::Parsed p = promtest::parse(text);
  for (const std::string& e : p.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(p.ok());

  EXPECT_EQ(p.sum("lpt_dispatches_total"), 201.0);
  EXPECT_EQ(p.sum("lpt_dispatches_total", {{"worker", "1"}}), 101.0);
  EXPECT_EQ(p.sum("lpt_preemptions_total", {{"kind", "signal_yield"}}), 15.0);
  EXPECT_EQ(p.sum("lpt_preemptions_total", {{"kind", "klt_switch"}}), 5.0);
  EXPECT_EQ(p.sum("lpt_run_queue_depth"), 1.0);
  EXPECT_EQ(p.sum("lpt_ults_spawned_total"), 200.0);
  EXPECT_EQ(p.sum("lpt_ults_live"), 3.0);
  EXPECT_EQ(p.sum("lpt_watchdog_checks_total"), 33.0);
  EXPECT_EQ(p.sum("lpt_watchdog_flags_total", {{"kind", "worker_stall"}}),
            1.0);
  EXPECT_NEAR(p.sum("lpt_uptime_seconds"), 2.5, 1e-9);
  // Counters are typed counter, gauges gauge.
  EXPECT_EQ(p.types.at("lpt_dispatches_total"), "counter");
  EXPECT_EQ(p.types.at("lpt_run_queue_depth"), "gauge");
  EXPECT_EQ(p.types.at("lpt_worker_time_in_state_seconds_total"), "counter");
  const auto* running = p.find("lpt_worker_time_in_state_seconds_total",
                               {{"worker", "0"}, {"state", "running"}});
  ASSERT_NE(running, nullptr);
  EXPECT_NEAR(running->value, 0.001, 1e-12);
}

TEST(MetricsExposition, JsonIsBalancedAndCarriesTotals) {
  const metrics::Snapshot s = sample_snapshot();
  const std::string text = render_json(s);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  int depth = 0, brackets = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(text.find("\"dispatches\": 201"), std::string::npos) << text;
  EXPECT_NE(text.find("\"workers\""), std::string::npos);
  EXPECT_NE(text.find("\"tick_effectiveness\""), std::string::npos);
}

TEST(MetricsConfig, EnvOverridesPublishConfig) {
  unsetenv("LPT_METRICS_FILE");
  unsetenv("LPT_METRICS_PERIOD_MS");
  metrics::PublishConfig base;
  base.file = "from_options.prom";
  base.period_ms = 250;
  metrics::PublishConfig r = metrics::resolve_publish_config(base);
  EXPECT_EQ(r.file, "from_options.prom");
  EXPECT_EQ(r.period_ms, 250);

  setenv("LPT_METRICS_FILE", "/tmp/env.json", 1);
  setenv("LPT_METRICS_PERIOD_MS", "75", 1);
  r = metrics::resolve_publish_config(base);
  EXPECT_EQ(r.file, "/tmp/env.json");
  EXPECT_EQ(r.period_ms, 75);

  // Garbage or non-positive periods fall back to a sane default.
  setenv("LPT_METRICS_PERIOD_MS", "banana", 1);
  r = metrics::resolve_publish_config(base);
  EXPECT_EQ(r.period_ms, 250);
  setenv("LPT_METRICS_PERIOD_MS", "-5", 1);
  base.period_ms = 0;
  r = metrics::resolve_publish_config(base);
  EXPECT_EQ(r.period_ms, 1000);

  unsetenv("LPT_METRICS_FILE");
  unsetenv("LPT_METRICS_PERIOD_MS");
}

TEST(MetricsConfig, FormatFollowsPathSuffix) {
  EXPECT_EQ(metrics::format_for_path("metrics.prom"),
            metrics::Format::kPrometheus);
  EXPECT_EQ(metrics::format_for_path("metrics.json"), metrics::Format::kJson);
  EXPECT_EQ(metrics::format_for_path("x.json.bak"),
            metrics::Format::kPrometheus);
  EXPECT_EQ(metrics::format_for_path(""), metrics::Format::kPrometheus);
}

TEST(PromParser, RejectsMalformedExpositions) {
  // No TYPE before the sample.
  EXPECT_FALSE(promtest::parse("orphan_total 1\n").ok());
  // Counter not ending in _total.
  EXPECT_FALSE(promtest::parse("# TYPE bad counter\nbad 1\n").ok());
  // Duplicate series.
  EXPECT_FALSE(promtest::parse("# TYPE a_total counter\n"
                               "a_total{w=\"0\"} 1\na_total{w=\"0\"} 2\n")
                   .ok());
  // Unterminated label set / bad value.
  EXPECT_FALSE(promtest::parse("# TYPE a gauge\na{w=\"0\" 1\n").ok());
  EXPECT_FALSE(promtest::parse("# TYPE a gauge\na twelve\n").ok());
  // A well-formed minimal exposition passes.
  EXPECT_TRUE(promtest::parse("# HELP a_total says a\n"
                              "# TYPE a_total counter\na_total 12\n")
                  .ok());
}

}  // namespace
}  // namespace lpt
