file(REMOVE_RECURSE
  "CMakeFiles/fibonacci.dir/fibonacci.cpp.o"
  "CMakeFiles/fibonacci.dir/fibonacci.cpp.o.d"
  "fibonacci"
  "fibonacci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibonacci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
