// Figure 4 reproduction: average time for an OS timer interruption vs the
// number of workers, 1 ms interval, for the four timer strategies.
//
// Paper anchors (Skylake): ~1-2 µs flat for per-worker (aligned); linear
// growth to ~100 µs at ~100 workers for per-worker (creation-time);
// per-process (one-to-all) linear but below creation-time; per-process
// (chain) flat, slightly above aligned.
#include <cstdio>

#include "common/table.hpp"
#include "sim/timers.hpp"

using namespace lpt;
using namespace lpt::sim;

int main() {
  std::printf("=== Figure 4: average timer interruption time (us) ===\n");
  std::printf("Simulated %s cost model, 1 ms interval, all workers "
              "preemptive, 1000 ticks averaged.\n\n",
              CostModel::skylake().name.c_str());

  const CostModel cm = CostModel::skylake();
  const Time interval = 1'000'000;
  const int ticks = 1000;
  const int worker_counts[] = {1, 2, 4, 8, 16, 28, 56, 84, 100, 112};

  Table table({"# workers", "per-worker (creation)", "per-worker (aligned)",
               "per-process (one-to-all)", "per-process (chain)"});
  for (int n : worker_counts) {
    auto cell = [&](TimerStrategy s) {
      Stats st = measure_interruption_time(cm, s, n, interval, ticks);
      return Table::fmt("%8.2f +- %.2f", st.mean() / 1000.0,
                        st.stddev() / 1000.0);
    };
    table.add_row({Table::fmt("%d", n),
                   cell(TimerStrategy::kPerWorkerCreationTime),
                   cell(TimerStrategy::kPerWorkerAligned),
                   cell(TimerStrategy::kProcessOneToAll),
                   cell(TimerStrategy::kProcessChain)});
  }
  table.print();

  // Qualitative checks against the paper's shape.
  auto mean_at = [&](TimerStrategy s, int n) {
    return measure_interruption_time(cm, s, n, interval, ticks).mean();
  };
  const double naive100 = mean_at(TimerStrategy::kPerWorkerCreationTime, 100);
  const double naive1 = mean_at(TimerStrategy::kPerWorkerCreationTime, 1);
  const double aligned100 = mean_at(TimerStrategy::kPerWorkerAligned, 100);
  const double aligned1 = mean_at(TimerStrategy::kPerWorkerAligned, 1);
  const double chain100 = mean_at(TimerStrategy::kProcessChain, 100);
  const double o2a100 = mean_at(TimerStrategy::kProcessOneToAll, 100);

  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] creation-time grows ~linearly (x%0.1f at 100 workers; "
              "paper: ~100 us => ~50x)\n",
              naive100 > 20 * naive1 ? "OK" : "MISMATCH", naive100 / naive1);
  std::printf("  [%s] aligned stays flat (%.2f us at 1 -> %.2f us at 100)\n",
              aligned100 < 1.5 * aligned1 ? "OK" : "MISMATCH",
              aligned1 / 1000.0, aligned100 / 1000.0);
  std::printf("  [%s] chain flat and slightly above aligned (%.2f vs %.2f us)\n",
              (chain100 > aligned100 && chain100 < 3 * aligned100) ? "OK"
                                                                   : "MISMATCH",
              chain100 / 1000.0, aligned100 / 1000.0);
  std::printf("  [%s] one-to-all grows but stays below creation-time "
              "(%.1f vs %.1f us at 100)\n",
              (o2a100 > 5 * aligned100 && o2a100 < naive100) ? "OK" : "MISMATCH",
              o2a100 / 1000.0, naive100 / 1000.0);
  return 0;
}
