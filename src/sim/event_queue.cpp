#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace lpt::sim {

void EventQueue::schedule(Time t, std::function<void()> fn) {
  LPT_CHECK_MSG(t >= now_, "event scheduled in the past");
  heap_.push(Ev{t, seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent, so
  // copy the function (events are small) and pop.
  Ev ev = heap_.top();
  heap_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

}  // namespace lpt::sim
