#include "common/sys.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lpt::sys {

namespace {

enum class Mode : int { kOff = 0, kNth, kFirst, kEvery, kProb };

/// Per-site plan + counters. Plan fields are individually atomic so the
/// signal-handler check path is race-free; cross-field coherence during a
/// reconfigure is not needed (configuration happens between runs/phases).
struct SiteState {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> failed{0};

  std::atomic<int> mode{static_cast<int>(Mode::kOff)};
  std::atomic<std::uint64_t> arg{0};        ///< N for nth/first/every
  std::atomic<std::uint64_t> after{0};      ///< calls to spare up front
  std::atomic<std::uint64_t> max_inject{0}; ///< 0 = unlimited
  /// Snapshot of `calls`/`injected` when the plan was armed: nth/first/after
  /// and max= count from configure time, not process start, so re-arming a
  /// plan mid-run behaves the same as arming it fresh.
  std::atomic<std::uint64_t> calls_base{0};
  std::atomic<std::uint64_t> injected_base{0};
  std::atomic<std::uint32_t> prob_scaled{0};///< P * 2^24
  std::atomic<std::uint64_t> prng{0};       ///< splitmix64 cursor
  std::atomic<int> err{EAGAIN};
};

SiteState g_sites[static_cast<int>(Site::kCount)];
std::atomic<std::uint64_t> g_total_injected{0};

SiteState& site(Site s) { return g_sites[static_cast<int>(s)]; }

std::uint64_t splitmix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// The async-signal-safe injection decision: returns the errno to inject, or
/// 0 to let the real call proceed. Atomics only.
int maybe_fail(Site s) {
  SiteState& st = site(s);
  const std::uint64_t total =
      st.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  const Mode mode = static_cast<Mode>(st.mode.load(std::memory_order_acquire));
  if (mode == Mode::kOff) return 0;
  // Call index since the plan was armed (1-based).
  const std::uint64_t base = st.calls_base.load(std::memory_order_relaxed);
  if (total <= base) return 0;
  const std::uint64_t n = total - base;
  const std::uint64_t after = st.after.load(std::memory_order_relaxed);
  if (n <= after) return 0;
  const std::uint64_t cap = st.max_inject.load(std::memory_order_relaxed);
  if (cap != 0 &&
      st.injected.load(std::memory_order_relaxed) -
              st.injected_base.load(std::memory_order_relaxed) >=
          cap)
    return 0;

  const std::uint64_t k = n - after;  // 1-based eligible-call index
  bool hit = false;
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kNth:
      hit = k == st.arg.load(std::memory_order_relaxed);
      break;
    case Mode::kFirst:
      hit = k <= st.arg.load(std::memory_order_relaxed);
      break;
    case Mode::kEvery: {
      const std::uint64_t e = st.arg.load(std::memory_order_relaxed);
      hit = e != 0 && k % e == 0;
      break;
    }
    case Mode::kProb: {
      // fetch_add hands every caller (including nested signal handlers) a
      // private cursor; splitmix64 turns it into the draw. Deterministic for
      // a single-threaded site, a fixed value *set* under concurrency.
      const std::uint64_t x = splitmix64(
          st.prng.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed));
      hit = static_cast<std::uint32_t>(x >> 40) <
            st.prob_scaled.load(std::memory_order_relaxed);
      break;
    }
  }
  if (!hit) return 0;
  st.injected.fetch_add(1, std::memory_order_relaxed);
  g_total_injected.fetch_add(1, std::memory_order_relaxed);
  return st.err.load(std::memory_order_relaxed);
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(x);
  return true;
}

bool parse_errno(const std::string& v, int* out) {
  static const struct { const char* name; int value; } kNames[] = {
      {"EAGAIN", EAGAIN}, {"ENOMEM", ENOMEM}, {"EPERM", EPERM},
      {"EINVAL", EINVAL}, {"ENFILE", ENFILE}, {"ENOSPC", ENOSPC},
      {"EINTR", EINTR},   {"ENOSYS", ENOSYS},
  };
  for (const auto& e : kNames)
    if (v == e.name) {
      *out = e.value;
      return true;
    }
  std::uint64_t x;
  if (parse_u64(v, &x) && x > 0 && x < 4096) {
    *out = static_cast<int>(x);
    return true;
  }
  return false;
}

bool parse_site(const std::string& v, Site* out) {
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i)
    if (v == site_name(static_cast<Site>(i))) {
      *out = static_cast<Site>(i);
      return true;
    }
  return false;
}

int default_errno(Site s) {
  return s == Site::kMmap || s == Site::kMprotect ? ENOMEM : EAGAIN;
}

/// One clause's parsed plan, staged before being published to a SiteState.
struct Plan {
  Mode mode = Mode::kOff;
  std::uint64_t arg = 0;
  std::uint64_t after = 0;
  std::uint64_t max_inject = 0;
  double prob = 0.0;
  std::uint64_t seed = 1;
  int err = 0;  // 0 = site default
};

bool parse_clause(const std::string& clause, Site* s, Plan* p,
                  std::string* error) {
  const std::size_t colon = clause.find(':');
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = "LPT_FAULT: " + msg + " in '" + clause + "'";
    return false;
  };
  if (colon == std::string::npos) return fail("missing ':'");
  if (!parse_site(clause.substr(0, colon), s)) return fail("unknown site");

  std::size_t pos = colon + 1;
  bool have_mode = false;
  while (pos <= clause.size()) {
    std::size_t comma = clause.find(',', pos);
    if (comma == std::string::npos) comma = clause.size();
    const std::string kv = clause.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) return fail("missing '=' in '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);

    if (key == "nth" || key == "first" || key == "every") {
      if (have_mode) return fail("multiple modes");
      if (!parse_u64(val, &p->arg) || p->arg == 0) return fail("bad " + key);
      p->mode = key == "nth" ? Mode::kNth
                             : key == "first" ? Mode::kFirst : Mode::kEvery;
      have_mode = true;
    } else if (key == "prob") {
      if (have_mode) return fail("multiple modes");
      char* end = nullptr;
      p->prob = std::strtod(val.c_str(), &end);
      if (end == nullptr || *end != '\0' || p->prob < 0.0 || p->prob > 1.0)
        return fail("bad prob");
      p->mode = Mode::kProb;
      have_mode = true;
    } else if (key == "seed") {
      if (!parse_u64(val, &p->seed)) return fail("bad seed");
    } else if (key == "after") {
      if (!parse_u64(val, &p->after)) return fail("bad after");
    } else if (key == "max") {
      if (!parse_u64(val, &p->max_inject)) return fail("bad max");
    } else if (key == "errno") {
      if (!parse_errno(val, &p->err)) return fail("bad errno");
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!have_mode) return fail("no mode (nth/first/every/prob)");
  return true;
}

void publish(Site s, const Plan& p) {
  SiteState& st = site(s);
  // Disarm while the remaining fields are (re)written; readers that race a
  // reconfigure see either the old plan or off, never a half plan that can
  // fire with stale parameters.
  st.mode.store(static_cast<int>(Mode::kOff), std::memory_order_release);
  st.arg.store(p.arg, std::memory_order_relaxed);
  st.after.store(p.after, std::memory_order_relaxed);
  st.max_inject.store(p.max_inject, std::memory_order_relaxed);
  st.calls_base.store(st.calls.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  st.injected_base.store(st.injected.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  st.prob_scaled.store(
      static_cast<std::uint32_t>(p.prob * static_cast<double>(1u << 24)),
      std::memory_order_relaxed);
  st.prng.store(p.seed * 0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
  st.err.store(p.err != 0 ? p.err : default_errno(s), std::memory_order_relaxed);
  st.mode.store(static_cast<int>(p.mode), std::memory_order_release);
}

void disarm_all() {
  for (auto& st : g_sites)
    st.mode.store(static_cast<int>(Mode::kOff), std::memory_order_release);
}

}  // namespace

const char* site_name(Site s) {
  switch (s) {
    case Site::kPthreadCreate: return "pthread_create";
    case Site::kTimerCreate: return "timer_create";
    case Site::kTimerSettime: return "timer_settime";
    case Site::kMmap: return "mmap";
    case Site::kPthreadSigqueue: return "pthread_sigqueue";
    case Site::kMprotect: return "mprotect";
    case Site::kRead: return "read";
    case Site::kWrite: return "write";
    case Site::kPipe2: return "pipe2";
    case Site::kEventfd: return "eventfd";
    case Site::kPoll: return "poll";
    case Site::kAccept: return "accept";
    case Site::kConnect: return "connect";
    case Site::kCount: break;
  }
  return "unknown";
}

bool configure_faults(const std::string& spec, std::string* error) {
  // Parse everything first so a malformed spec leaves the armed plan intact.
  Site sites[static_cast<int>(Site::kCount)];
  Plan plans[static_cast<int>(Site::kCount)];
  int n = 0;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;
    if (n >= static_cast<int>(Site::kCount)) {
      if (error != nullptr) *error = "LPT_FAULT: too many clauses";
      return false;
    }
    if (!parse_clause(clause, &sites[n], &plans[n], error)) return false;
    ++n;
  }

  disarm_all();
  for (int i = 0; i < n; ++i) publish(sites[i], plans[i]);
  return true;
}

void reset_faults() {
  disarm_all();
  for (auto& st : g_sites) {
    st.calls.store(0, std::memory_order_relaxed);
    st.injected.store(0, std::memory_order_relaxed);
    st.failed.store(0, std::memory_order_relaxed);
    st.calls_base.store(0, std::memory_order_relaxed);
    st.injected_base.store(0, std::memory_order_relaxed);
  }
  g_total_injected.store(0, std::memory_order_relaxed);
}

void load_env_faults() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("LPT_FAULT");
    if (spec == nullptr || spec[0] == '\0') return;
    std::string error;
    if (!configure_faults(spec, &error))
      std::fprintf(stderr, "lpt: ignoring malformed %s\n", error.c_str());
  });
}

SiteCounters counters(Site s) {
  const SiteState& st = site(s);
  SiteCounters c;
  c.calls = st.calls.load(std::memory_order_relaxed);
  c.injected = st.injected.load(std::memory_order_relaxed);
  c.failed = st.failed.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t total_injected() {
  return g_total_injected.load(std::memory_order_relaxed);
}

// --- wrappers --------------------------------------------------------------

int pthread_create(pthread_t* thread, const pthread_attr_t* attr,
                   void* (*start_routine)(void*), void* arg) {
  if (const int e = maybe_fail(Site::kPthreadCreate)) return e;
  const int rc = ::pthread_create(thread, attr, start_routine, arg);
  if (rc != 0)
    site(Site::kPthreadCreate).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int timer_create(clockid_t clockid, struct sigevent* sevp, timer_t* timerid) {
  if (const int e = maybe_fail(Site::kTimerCreate)) {
    errno = e;
    return -1;
  }
  const int rc = ::timer_create(clockid, sevp, timerid);
  if (rc != 0)
    site(Site::kTimerCreate).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int timer_settime(timer_t timerid, int flags, const struct itimerspec* new_value,
                  struct itimerspec* old_value) {
  if (const int e = maybe_fail(Site::kTimerSettime)) {
    errno = e;
    return -1;
  }
  const int rc = ::timer_settime(timerid, flags, new_value, old_value);
  if (rc != 0)
    site(Site::kTimerSettime).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

void* mmap(void* addr, std::size_t length, int prot, int flags, int fd,
           off_t offset) {
  if (const int e = maybe_fail(Site::kMmap)) {
    errno = e;
    return MAP_FAILED;
  }
  void* p = ::mmap(addr, length, prot, flags, fd, offset);
  if (p == MAP_FAILED)
    site(Site::kMmap).failed.fetch_add(1, std::memory_order_relaxed);
  return p;
}

int pthread_sigqueue(pthread_t thread, int sig, const union sigval value) {
  if (const int e = maybe_fail(Site::kPthreadSigqueue)) return e;
  const int rc = ::pthread_sigqueue(thread, sig, value);
  if (rc != 0)
    site(Site::kPthreadSigqueue).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int mprotect(void* addr, std::size_t len, int prot) {
  if (const int e = maybe_fail(Site::kMprotect)) {
    errno = e;
    return -1;
  }
  const int rc = ::mprotect(addr, len, prot);
  if (rc != 0)
    site(Site::kMprotect).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

ssize_t read(int fd, void* buf, std::size_t count) {
  if (const int e = maybe_fail(Site::kRead)) {
    errno = e;
    return -1;
  }
  const ssize_t rc = ::read(fd, buf, count);
  if (rc < 0) site(Site::kRead).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

ssize_t write(int fd, const void* buf, std::size_t count) {
  if (const int e = maybe_fail(Site::kWrite)) {
    errno = e;
    return -1;
  }
  const ssize_t rc = ::write(fd, buf, count);
  if (rc < 0) site(Site::kWrite).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int pipe2(int pipefd[2], int flags) {
  if (const int e = maybe_fail(Site::kPipe2)) {
    errno = e;
    return -1;
  }
  const int rc = ::pipe2(pipefd, flags);
  if (rc != 0)
    site(Site::kPipe2).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int eventfd(unsigned int initval, int flags) {
  if (const int e = maybe_fail(Site::kEventfd)) {
    errno = e;
    return -1;
  }
  const int rc = ::eventfd(initval, flags);
  if (rc < 0)
    site(Site::kEventfd).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int poll(struct pollfd* fds, nfds_t nfds, int timeout) {
  if (const int e = maybe_fail(Site::kPoll)) {
    errno = e;
    return -1;
  }
  const int rc = ::poll(fds, nfds, timeout);
  if (rc < 0) site(Site::kPoll).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  if (const int e = maybe_fail(Site::kAccept)) {
    errno = e;
    return -1;
  }
  const int rc = ::accept(sockfd, addr, addrlen);
  if (rc < 0)
    site(Site::kAccept).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

int connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen) {
  if (const int e = maybe_fail(Site::kConnect)) {
    errno = e;
    return -1;
  }
  const int rc = ::connect(sockfd, addr, addrlen);
  if (rc != 0)
    site(Site::kConnect).failed.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

}  // namespace lpt::sys
