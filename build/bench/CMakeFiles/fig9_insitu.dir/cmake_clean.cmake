file(REMOVE_RECURSE
  "CMakeFiles/fig9_insitu.dir/fig9_insitu.cpp.o"
  "CMakeFiles/fig9_insitu.dir/fig9_insitu.cpp.o.d"
  "fig9_insitu"
  "fig9_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
