// Standalone validator for a published metrics file — the check.sh smoke
// runs a bench with LPT_METRICS_FILE set and then feeds the result through
// this binary, so the end-to-end publisher path (env config -> background
// thread -> atomic rewrite -> Prometheus exposition) is gated in CI without
// gtest. Exit 0 on a clean parse with the core families present.
#include <cstdio>
#include <string>

#include "support/prom_parser.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <metrics-file>\n", argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(argv[1], "r");
  if (f == nullptr) {
    std::fprintf(stderr, "prom_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (text.empty()) {
    std::fprintf(stderr, "prom_check: %s is empty\n", argv[1]);
    return 1;
  }

  const lpt::promtest::Parsed p = lpt::promtest::parse(text);
  int rc = 0;
  for (const std::string& e : p.errors) {
    std::fprintf(stderr, "prom_check: %s\n", e.c_str());
    rc = 1;
  }
  for (const char* fam :
       {"lpt_uptime_seconds", "lpt_workers", "lpt_dispatches_total",
        "lpt_run_queue_depth", "lpt_preemptions_total",
        "lpt_preempt_ticks_sent_total", "lpt_preempt_handler_entries_total",
        "lpt_ults_spawned_total", "lpt_klts_created_total",
        "lpt_watchdog_checks_total", "lpt_watchdog_flags_total"}) {
    if (!p.has_family(fam)) {
      std::fprintf(stderr, "prom_check: family %s missing\n", fam);
      rc = 1;
    }
  }
  if (rc == 0)
    std::printf("prom_check: %s ok (%zu samples, %zu families)\n", argv[1],
                p.samples.size(), p.types.size());
  return rc;
}
