// TSan-clean unit tests of the profiler's lock-free primitives on plain
// std::threads (no fiber switches, so the ThreadSanitizer stage of
// scripts/check.sh can run them): the SampleRing reserve/commit protocol
// under concurrent writers, the CAS-keyed wait-site table, the LockStats
// slab, and the folded/JSON writers over synthetic data (round-tripped
// through tests/support/prof_parser.hpp).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "prof/prof.hpp"
#include "support/prof_parser.hpp"

namespace lpt::prof {
namespace {

std::string tmp_path(const char* tag) {
  return "/tmp/lpt_prof_unit_" + std::to_string(::getpid()) + "_" + tag;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

ProfConfig armed(std::uint32_t ring_cap = 1u << 12) {
  ProfConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = ring_cap;
  return cfg;
}

TEST(ProfConfig, DefaultsAreOff) {
  const ProfConfig cfg;
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.sample_hz, 0);
  EXPECT_TRUE(cfg.offcpu);
  EXPECT_TRUE(cfg.locks);
}

#if !defined(LPT_PROF_DISABLED)

TEST(ProfUnit, RingReconcilesUnderConcurrentWriters) {
  // Small rings force drops; the contract must hold regardless.
  Collector::instance().configure(armed(/*ring_cap=*/128));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      SampleRing* ring = Collector::instance().acquire_ring();
      ASSERT_NE(ring, nullptr);
      for (int i = 0; i < kPerThread; ++i)
        // fp/stack bounds of 0: the frame walk rejects immediately, leaving
        // a depth-1 sample of just the synthetic pc.
        sample(ring, /*ult=*/static_cast<std::uint32_t>(t), /*worker=*/
               static_cast<std::int16_t>(t), /*pool=*/0,
               /*pc=*/0x400000u + static_cast<std::uintptr_t>(t), /*fp=*/0,
               /*stack_lo=*/0, /*stack_hi=*/0);
    });
  for (auto& th : threads) th.join();

  const Totals t = Collector::instance().totals();
  EXPECT_EQ(t.invocations, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.invocations, t.recorded + t.dropped);
  EXPECT_GT(t.dropped, 0u);  // 500 > 128 per ring guarantees drops
  EXPECT_LE(t.recorded, static_cast<std::uint64_t>(kThreads) * 128u);

  // Every committed sample is visible to the writer, once.
  const std::string path = tmp_path("ring.folded");
  ASSERT_TRUE(Collector::instance().write_file(path));
  const proftest::FoldedParsed p = proftest::parse_folded(slurp(path));
  std::remove(path.c_str());
  for (const std::string& e : p.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.folded_sum(), t.recorded);
  for (int u = 0; u < kThreads; ++u)
    EXPECT_LE(p.ult_samples(static_cast<std::uint32_t>(u)), 128u);
  Collector::instance().disable();
}

TEST(ProfUnit, NullRingCountsNoRingDrops) {
  Collector::instance().configure(armed());
  sample(nullptr, 0, 0, 0, 0x1234, 0, 0, 0);
  const Totals t = Collector::instance().totals();
  EXPECT_EQ(t.invocations, 1u);
  EXPECT_EQ(t.recorded, 0u);
  EXPECT_EQ(t.dropped, 1u);
  Collector::instance().disable();
}

TEST(ProfUnit, WaitSiteTableCasUnderConcurrency) {
  Collector::instance().configure(armed());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        // 16 distinct callsites x 3 kinds: all racing threads funnel into
        // the same handful of CAS-claimed slots.
        const auto site = static_cast<std::uintptr_t>(0x1000 + (i % 16) * 8);
        const auto kind = static_cast<WaitKind>(1 + (t % 3));
        record_wait(kind, site, /*ns=*/1000);
      }
    });
  for (auto& th : threads) th.join();

  const Totals t = Collector::instance().totals();
  EXPECT_EQ(t.offcpu_waits, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.offcpu_dropped, 0u);  // 48 distinct keys << 256 slots
  EXPECT_EQ(t.offcpu_total_ns,
            static_cast<std::uint64_t>(kThreads * kPerThread) * 1000u);

  std::uint64_t site_sum = 0;
  for (const WaitSiteProfile& s : Collector::instance().offcpu_sites()) {
    EXPECT_NE(s.kind, WaitKind::kNone);
    site_sum += s.count;
  }
  EXPECT_EQ(site_sum, t.offcpu_waits);
  Collector::instance().disable();
}

TEST(ProfUnit, LockSlabExhaustsGracefully) {
  Collector::instance().configure(armed());
  std::vector<LockStats*> slots;
  for (std::uint32_t i = 0; i < Collector::kMaxLocks; ++i) {
    LockStats* ls = Collector::instance().acquire_lock_stats();
    ASSERT_NE(ls, nullptr) << "slot " << i;
    slots.push_back(ls);
  }
  // Distinct slots, then graceful exhaustion (unprofiled, not crashed).
  EXPECT_NE(slots[0], slots[1]);
  EXPECT_EQ(Collector::instance().acquire_lock_stats(), nullptr);

  // Reconfigure recycles the slab from zero.
  Collector::instance().configure(armed());
  LockStats* fresh = Collector::instance().acquire_lock_stats();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh, slots[0]);
  EXPECT_EQ(fresh->acquires.load(), 0u);
  Collector::instance().disable();
}

TEST(ProfUnit, JsonWriterValidOverSyntheticData) {
  Collector::instance().configure(armed());
  SampleRing* ring = Collector::instance().acquire_ring();
  ASSERT_NE(ring, nullptr);
  for (int i = 0; i < 10; ++i) sample(ring, 7, 0, 1, 0x5000, 0, 0, 0);
  record_wait(WaitKind::kMutex, 0x2000, 5000);
  record_wait(WaitKind::kSleep, 0x3000, 1'000'000);
  LockStats* ls = Collector::instance().acquire_lock_stats();
  ASSERT_NE(ls, nullptr);
  ls->acquires.store(10);
  ls->contended.store(3);
  ls->chains.store(1);
  ls->site.store(0x2000);
  ls->hold_ns.record(10'000);
  ls->wait_ns.record(5'000);

  const std::string path = tmp_path("synthetic.json");
  ASSERT_TRUE(Collector::instance().write_file(path));
  const proftest::JsonParsed j = proftest::parse_json(slurp(path));
  std::remove(path.c_str());
  for (const std::string& e : j.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.root.get("oncpu")->num_or("recorded", -1), 10.0);
  EXPECT_EQ(j.root.get("offcpu")->num_or("waits", -1), 2.0);
  EXPECT_EQ(j.root.get("locks")->num_or("acquires", -1), 10.0);
  EXPECT_EQ(j.root.get("locks")->num_or("contended", -1), 3.0);
  Collector::instance().disable();
}

#else  // LPT_PROF_DISABLED

TEST(ProfUnit, DisabledBuildStubsStayInert) {
  ProfConfig cfg;
  cfg.enabled = true;
  Collector::instance().configure(cfg);
  EXPECT_EQ(Collector::instance().acquire_ring(), nullptr);
  EXPECT_EQ(Collector::instance().acquire_lock_stats(), nullptr);
  sample(nullptr, 0, 0, 0, 0, 0, 0, 0);
  record_wait(WaitKind::kMutex, 0x1, 1);
  const Totals t = Collector::instance().totals();
  EXPECT_EQ(t.invocations, 0u);
  EXPECT_EQ(t.offcpu_waits, 0u);
  // Exports still produce a parseable (empty) profile for tooling.
  const std::string path = tmp_path("disabled.folded");
  ASSERT_TRUE(Collector::instance().write_file(path));
  const proftest::FoldedParsed p = proftest::parse_folded(slurp(path));
  std::remove(path.c_str());
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.folded_sum(), 0u);
}

#endif  // LPT_PROF_DISABLED

}  // namespace
}  // namespace lpt::prof
