#include "runtime/sync.hpp"

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/time.hpp"
#include "runtime/internal.hpp"
#include "runtime/park.hpp"
#include "runtime/prof_glue.hpp"

namespace lpt {

namespace {

ThreadCtl* require_ult(const char* what) {
  ThreadCtl* self = detail::current_ult_or_null();
  LPT_CHECK_MSG(self != nullptr, what);
  return self;
}

void make_ready(ThreadCtl* t, std::uint32_t waker = Runtime::kWakerFromTls) {
  Runtime* rt = t->rt;
  t->store_state(ThreadState::kReady);
  Worker* hint = worker_tls()->worker;  // may be null (external thread)
  // enqueue_ready stamps the ready transition and emits the causal kUltWake
  // edge (waker = the calling ULT by default, kind = what t was parked
  // under). Paths where the causal waker is not the calling thread — the
  // abandoned-lock force-release runs on the watchdog but the dead owner is
  // what freed the lock — pass the waker explicitly.
  rt->enqueue_ready(t, hint, EnqueueKind::kUnblock, waker);
}

// ---- lock-contention profiling helpers (all called under the Mutex's
// guard_ unless noted; every one is a no-op with a null `ls`, and the whole
// block compiles away under LPT_PROF_DISABLED) ----
#if !defined(LPT_PROF_DISABLED)

/// Lazily attach the Mutex's LockStats slot. Caller holds guard_, so the
/// plain member is race-free; slab exhaustion leaves the mutex unprofiled.
prof::LockStats* lock_stats(prof::LockStats*& slot) {
  if (slot == nullptr) slot = prof::Collector::instance().acquire_lock_stats();
  return slot;
}

void lock_note_acquire(prof::LockStats* ls) {
  if (ls != nullptr) ls->acquires.fetch_add(1, std::memory_order_relaxed);
}

/// The caller just became the owner without waiting (fast path / try_lock).
void lock_note_owned(prof::LockStats* ls, const ThreadCtl* self) {
  if (ls == nullptr) return;
  ls->owner.store(self, std::memory_order_relaxed);
  ls->hold_start_ns = trace::now_ns();
}

/// The caller is about to park behind the current owner. The contention
/// chain check (the pathology ULT-aware locks target: waiting behind a
/// holder that is itself off-CPU) compares the opaque owner pointer against
/// every worker's current ULT — pointer compares only, the holder may be
/// finalizing concurrently.
void lock_note_contended(prof::LockStats* ls, Runtime* rt, void* site) {
  if (ls == nullptr) return;
  ls->contended.fetch_add(1, std::memory_order_relaxed);
  std::uintptr_t none = 0;
  ls->site.compare_exchange_strong(
      none, reinterpret_cast<std::uintptr_t>(site), std::memory_order_relaxed);
  const void* owner = ls->owner.load(std::memory_order_relaxed);
  if (owner == nullptr || rt == nullptr) return;
  for (int r = 0; r < rt->num_workers(); ++r) {
    if (rt->worker(r).current_ult.load(std::memory_order_acquire) == owner)
      return;  // the holder is on a core; normal contention
  }
  ls->chains.fetch_add(1, std::memory_order_relaxed);
}

/// A parked waiter woke as the new owner (direct handoff already stamped
/// hold_start_ns/owner under guard_ in unlock); record its wait time.
/// Called WITHOUT guard_ — touches only atomics/histograms.
void lock_note_waited(prof::LockStats* ls, const ThreadCtl* self,
                      std::int64_t wait_start, void* site) {
  if (ls == nullptr || wait_start == 0) return;
  const std::int64_t ns = trace::now_ns() - wait_start;
  ls->wait_ns.record(ns);
  LPT_TRACE_EVENT(trace::EventType::kLockContended, self->trace_id,
                  static_cast<std::uint64_t>(ns < 0 ? 0 : ns),
                  static_cast<std::uint64_t>(
                      reinterpret_cast<std::uintptr_t>(site)));
}

/// The owner is releasing: close its hold interval.
void lock_note_release(prof::LockStats* ls) {
  if (ls == nullptr || ls->hold_start_ns == 0) return;
  ls->hold_ns.record(trace::now_ns() - ls->hold_start_ns);
  ls->hold_start_ns = 0;
}

/// Direct handoff: `next` owns the lock from this instant (its hold time
/// includes the wakeup latency — it *is* holding the lock while it waits to
/// run, which is exactly what a contention profile should show).
void lock_note_handoff(prof::LockStats* ls, const ThreadCtl* next) {
  if (ls == nullptr) return;
  ls->owner.store(next, std::memory_order_relaxed);
  ls->hold_start_ns = trace::now_ns();
}

void lock_note_released_idle(prof::LockStats* ls) {
  if (ls != nullptr) ls->owner.store(nullptr, std::memory_order_relaxed);
}

#else  // LPT_PROF_DISABLED

inline prof::LockStats* lock_stats(prof::LockStats*&) { return nullptr; }
inline void lock_note_acquire(prof::LockStats*) {}
inline void lock_note_owned(prof::LockStats*, const ThreadCtl*) {}
inline void lock_note_contended(prof::LockStats*, Runtime*, void*) {}
inline void lock_note_waited(prof::LockStats*, const ThreadCtl*, std::int64_t,
                             void*) {}
inline void lock_note_release(prof::LockStats*) {}
inline void lock_note_handoff(prof::LockStats*, const ThreadCtl*) {}
inline void lock_note_released_idle(prof::LockStats*) {}

#endif  // LPT_PROF_DISABLED

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

void Mutex::lock() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("lpt::Mutex::lock outside ULT context");
  detail::cancel_point(self);  // before acquisition: nothing held yet
  detail::begin_no_preempt(self);
  for (;;) {
    guard_.lock();
    prof::LockStats* ls = prof::locks_on() ? lock_stats(prof_) : nullptr;
    lock_note_acquire(ls);
    if (!locked_) {
      locked_ = true;
      owner_ = self;
      if (park::armed()) {
        if (res_ == nullptr)
          res_ = park::acquire_resource(
              static_cast<std::uint8_t>(prof::WaitKind::kMutex), this,
              &Mutex::abandon_cb);
        park::add_owner(res_, self);
      }
      lock_note_owned(ls, self);
      guard_.unlock();
      detail::end_no_preempt(self);
      return;
    }
    if (owner_ == self && park::armed() && self->no_preempt_depth == 1) {
      // Self-deadlock: relocking the mutex we already hold would park behind
      // ourselves forever. Caught synchronously (a 1-cycle, no detector
      // round trip) and terminated as a deadlock victim. Under an outer
      // NoPreemptGuard the cancellation point below cannot fire, so the
      // historical behavior (hang, detectable by the watchdog) is kept; with
      // the registry disarmed the check is off entirely.
      guard_.unlock();
      self->cancel_fault = FaultKind::kDeadlock;
      self->cancel_requested.store(true, std::memory_order_release);
      self->rt->note_self_deadlock(
          self, static_cast<std::uint8_t>(prof::WaitKind::kMutex));
      detail::end_no_preempt(self);  // cancellation point: does not return
      detail::begin_no_preempt(self);
      continue;  // unreachable in practice; keeps the invariant if it ever is
    }
    lock_note_contended(ls, self->rt, site);
    waiters_.push_back(self);
    park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kMutex),
               /*timed=*/false, res_, nullptr, &guard_, &waiters_);
    const std::int64_t wait_start = ls != nullptr ? trace::now_ns() : 0;
    prof::offcpu_begin(self, prof::WaitKind::kMutex, site);
    // Direct handoff: unlock() keeps `locked_` set and wakes us as the owner.
    detail::suspend_block(self, &guard_, nullptr);
    park::unpark(self);
    prof::offcpu_end(self);
    if (self->park_broken) {
      // The deadlock breaker cancelled us out of the wait: we do NOT own the
      // lock. The cancellation point below normally terminates us; a thread
      // it cannot unwind (outer NoPreemptGuard) retries the acquire.
      self->park_broken = false;
      detail::end_no_preempt(self);  // cancellation point: usually no return
      detail::begin_no_preempt(self);
      continue;
    }
    lock_note_waited(ls, self, wait_start, site);
    detail::end_no_preempt(self);
    return;
  }
}

bool Mutex::try_lock() {
  ThreadCtl* self = require_ult("lpt::Mutex::try_lock outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  const bool got = !locked_;
  if (got) {
    locked_ = true;
    owner_ = self;
    if (park::armed()) {
      if (res_ == nullptr)
        res_ = park::acquire_resource(
            static_cast<std::uint8_t>(prof::WaitKind::kMutex), this,
            &Mutex::abandon_cb);
      park::add_owner(res_, self);
    }
    prof::LockStats* ls = prof::locks_on() ? lock_stats(prof_) : nullptr;
    lock_note_acquire(ls);
    lock_note_owned(ls, self);
  }
  guard_.unlock();
  detail::end_no_preempt(self);
  return got;
}

bool Mutex::try_lock_for(std::chrono::nanoseconds timeout) {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self =
      require_ult("lpt::Mutex::try_lock_for outside ULT context");
  detail::cancel_point(self);
  detail::begin_no_preempt(self);
  guard_.lock();
  prof::LockStats* ls = prof::locks_on() ? lock_stats(prof_) : nullptr;
  if (!locked_) {
    locked_ = true;
    owner_ = self;
    if (park::armed()) {
      if (res_ == nullptr)
        res_ = park::acquire_resource(
            static_cast<std::uint8_t>(prof::WaitKind::kMutex), this,
            &Mutex::abandon_cb);
      park::add_owner(res_, self);
    }
    lock_note_acquire(ls);
    lock_note_owned(ls, self);
    guard_.unlock();
    detail::end_no_preempt(self);
    return true;
  }
  if (timeout.count() <= 0) {
    guard_.unlock();
    detail::end_no_preempt(self);
    return false;
  }
  lock_note_acquire(ls);
  lock_note_contended(ls, self->rt, site);
  const std::int64_t deadline = now_ns() + timeout.count();
  waiters_.push_back(self);
  self->wait_timed_out = false;
  const std::int64_t wait_start = ls != nullptr ? trace::now_ns() : 0;
  // Expiry races unlock() for the wakeup under guard_; whoever removes us
  // from waiters_ wins. Losing to unlock() means we were handed the lock —
  // a timed waiter that wakes as owner reports success even if late.
  self->rt->register_timed_wait(self, deadline, &guard_, &waiters_);
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kMutex),
             /*timed=*/true, res_, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kMutex, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  self->rt->unregister_timed_wait(self);
  if (!self->wait_timed_out) lock_note_waited(ls, self, wait_start, site);
  detail::end_no_preempt(self);  // cancellation point
  return !self->wait_timed_out;
}

void Mutex::unlock() {
  // Callable from ULT context and from the scheduler (condvar-wait release),
  // so owner bookkeeping uses owner_ — not the calling context.
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  LPT_CHECK_MSG(locked_, "unlock of unowned lpt::Mutex");
  prof::LockStats* ls = prof::locks_on() ? prof_ : nullptr;
  lock_note_release(ls);
  park::remove_owner(res_, owner_);
  if (waiters_.empty()) {
    locked_ = false;
    owner_ = nullptr;
    lock_note_released_idle(ls);
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  ThreadCtl* next = waiters_.front();
  waiters_.erase(waiters_.begin());
  owner_ = next;  // ownership transfers before the wake: edges never dangle
  park::add_owner(res_, next);
  lock_note_handoff(ls, next);
  guard_.unlock();  // `locked_` stays true: ownership passes to `next`
  make_ready(next);
  detail::end_no_preempt(self);
}

bool Mutex::held_by_caller() const {
  ThreadCtl* self = detail::current_ult_or_null();
  if (self == nullptr) return false;
  auto* m = const_cast<Mutex*>(this);
  detail::begin_no_preempt(self);
  m->guard_.lock();
  const bool held = locked_ && owner_ == self;
  m->guard_.unlock();
  detail::end_no_preempt(self);
  return held;
}

bool Mutex::abandon(ThreadCtl* dead, bool release) {
  // Finalize-context hook: `dead` ended while recorded as this mutex's
  // owner. Always clear owner_ (a later ThreadCtl at the same address must
  // not read as the holder); force-unlock with handoff only when asked.
  guard_.lock();
  if (!locked_ || owner_ != dead) {
    guard_.unlock();
    return false;
  }
  owner_ = nullptr;
  if (!release) {
    guard_.unlock();
    return false;
  }
  prof::LockStats* ls = prof::locks_on() ? prof_ : nullptr;
  lock_note_release(ls);
  if (waiters_.empty()) {
    locked_ = false;
    lock_note_released_idle(ls);
    guard_.unlock();
    return true;
  }
  ThreadCtl* next = waiters_.front();
  waiters_.erase(waiters_.begin());
  owner_ = next;
  park::add_owner(res_, next);
  lock_note_handoff(ls, next);
  guard_.unlock();
  // Causally the dead owner freed the lock, not the watchdog thread running
  // this hook — attribute the wake edge to it so trace_critical_path can
  // walk a survivor's chain back into the broken cycle.
  make_ready(next, dead->trace_id);
  return true;
}

bool Mutex::abandon_cb(void* primitive, ThreadCtl* dead, bool release) {
  return static_cast<Mutex*>(primitive)->abandon(dead, release);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::wait(Mutex& m) {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("lpt::CondVar::wait outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  waiters_.push_back(self);
  // No owner edge: a condvar waiter can never be a cycle member (it waits on
  // a notify, not on a thread). Registered for visibility and the reactor.
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kCondVar),
             /*timed=*/false, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kCondVar, site);
  // The scheduler releases guard_ and *then* m after our context is saved,
  // so a signaler can neither miss us nor wake us before we are suspended.
  detail::suspend_block(self, &guard_, &m);
  park::unpark(self);
  prof::offcpu_end(self);
  detail::end_no_preempt(self);
  m.lock();
}

bool CondVar::wait_for(Mutex& m, std::chrono::nanoseconds timeout) {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("lpt::CondVar::wait_for outside ULT context");
  if (timeout.count() <= 0) return false;  // immediate timeout, m stays held
  const std::int64_t deadline = now_ns() + timeout.count();
  detail::begin_no_preempt(self);
  guard_.lock();
  waiters_.push_back(self);
  self->wait_timed_out = false;
  self->rt->register_timed_wait(self, deadline, &guard_, &waiters_);
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kCondVar),
             /*timed=*/true, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kCondVar, site);
  detail::suspend_block(self, &guard_, &m);
  park::unpark(self);
  prof::offcpu_end(self);
  self->rt->unregister_timed_wait(self);
  // Cancellation point — fires while m is NOT held, so a cancelled waiter
  // never strands the user mutex.
  detail::end_no_preempt(self);
  m.lock();
  return !self->wait_timed_out;
}

void CondVar::notify_one() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  ThreadCtl* t = nullptr;
  {
    SpinlockGuard g(guard_);
    if (!waiters_.empty()) {
      t = waiters_.front();
      waiters_.erase(waiters_.begin());
    }
  }
  if (t != nullptr) make_ready(t);
  detail::end_no_preempt(self);
}

void CondVar::notify_all() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> ts;
  {
    SpinlockGuard g(guard_);
    ts.swap(waiters_);
  }
  for (ThreadCtl* t : ts) make_ready(t);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

Barrier::Barrier(int parties) : parties_(parties) {
  LPT_CHECK(parties >= 1);
  waiters_.reserve(parties);
}

void Barrier::arrive_and_wait() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("lpt::Barrier outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    std::vector<ThreadCtl*> ts;
    ts.swap(waiters_);
    guard_.unlock();
    for (ThreadCtl* t : ts) make_ready(t);
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kBarrier),
             /*timed=*/false, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kBarrier, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// BusyFlag
// ---------------------------------------------------------------------------

void BusyFlag::wait(WaitMode mode) const {
  void* const site = __builtin_return_address(0);
  if (is_set()) return;
  // BusyFlag never parks — the wait burns a core by design (§4.1). It is
  // still wait time, so the profiler attributes the spin interval to the
  // callsite like a blocking primitive would (kBusyFlag entries in the wait
  // table are on-CPU spins, not suspensions).
  const std::int64_t t0 = prof::offcpu_on() ? trace::now_ns() : 0;
  while (!is_set()) {
    if (mode == WaitMode::kSpinWithYield) {
      this_thread::yield();
    } else {
      for (int i = 0; i < 64; ++i) cpu_pause();
    }
  }
  if (t0 != 0)
    prof::record_wait(prof::WaitKind::kBusyFlag,
                      reinterpret_cast<std::uintptr_t>(site),
                      trace::now_ns() - t0);
}

}  // namespace lpt
