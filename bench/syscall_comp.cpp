// Blocking-syscall compensation on the real runtime (docs/robustness.md):
// dispatch latency of ready ULTs while workers are wedged inside a blocking
// read, with the wedge sentinel on vs off.
//
// Two sections, each run both ways:
//   half-wedged: 1 of 2 workers blocks in the kernel. Spare capacity (the
//     idle worker plus work stealing) masks the wedge — dispatch stays fast
//     in both modes. This is the baseline that shows the sentinel is not
//     needed while capacity remains.
//   all-wedged: both workers block. With the sentinel off, ready ULTs wait
//     the full wedge duration (nothing can dispatch them). With it on, the
//     watchdog activates compensating KLTs once the grace expires and the
//     probes dispatch within a few sentinel periods.
//
// The absolute numbers depend on this machine; the reproducible part is the
// ordering (sentinel-on latency ~ grace + a few watchdog periods, sentinel-
// off latency ~ the wedge duration) and the half-wedged indifference.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/sys.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

using namespace lpt;

namespace {

constexpr int kWorkers = 2;
constexpr int kProbes = 8;
constexpr int kTrials = 5;
constexpr std::int64_t kGraceNs = 10'000'000;     // 10 ms
constexpr int kWatchdogMs = 10;
constexpr std::int64_t kWedgeNs = 150'000'000;    // 150 ms

struct TrialResult {
  double dispatch_ms_max = 0;   ///< slowest probe's spawn-to-run latency
  std::uint64_t activated = 0;  ///< compensations this trial
};

/// One runtime lifetime: wedge `wedged` workers in a blocking pipe read,
/// then spawn ready probes and measure how long each waits to run.
TrialResult run_trial(bool sentinel, int wedged) {
  RuntimeOptions o;
  o.num_workers = kWorkers;
  o.timer = TimerKind::None;  // the sentinel needs only the watchdog
  o.watchdog_period_ms = kWatchdogMs;
  o.syscall_grace_ns = kGraceNs;
  o.syscall_compensate = sentinel;
  Runtime rt(o);

  std::vector<std::array<int, 2>> pipes(wedged);
  std::vector<Thread> readers;
  for (int i = 0; i < wedged; ++i) {
    if (sys::pipe2(pipes[i].data(), 0) != 0) std::abort();
    ThreadAttrs a;
    a.home_pool = i;  // one wedge per worker
    int fd = pipes[i][0];
    readers.push_back(rt.spawn(
        [fd] {
          char c = 0;
          (void)io::read(fd, &c, 1);
        },
        a));
  }
  // Both enter the annotated read before the clock starts.
  while (rt.stats().syscall_blocks < static_cast<std::uint64_t>(wedged))
    busy_spin_ns(100'000);

  std::vector<std::atomic<std::int64_t>> started(kProbes);
  for (auto& s : started) s.store(0, std::memory_order_relaxed);
  const std::int64_t t0 = now_ns();
  std::vector<Thread> probes;
  for (int i = 0; i < kProbes; ++i)
    probes.push_back(rt.spawn([&started, i] {
      started[i].store(now_ns(), std::memory_order_release);
    }));

  // Hold the wedge for its full duration, then release the readers.
  while (now_ns() - t0 < kWedgeNs) busy_spin_ns(1'000'000);
  for (auto& p : pipes)
    if (::write(p[1], "u", 1) != 1) std::abort();
  for (auto& t : readers) t.join();
  for (auto& t : probes) t.join();

  TrialResult r;
  for (auto& s : started) {
    const double ms = (s.load(std::memory_order_acquire) - t0) / 1e6;
    if (ms > r.dispatch_ms_max) r.dispatch_ms_max = ms;
  }
  r.activated = rt.stats().syscall_comp_activated;
  for (auto& p : pipes) {
    ::close(p[0]);
    ::close(p[1]);
  }
  return r;
}

struct Section {
  Stats dispatch_ms;       ///< per-trial max spawn-to-run latency
  std::uint64_t activated = 0;
};

Section run_section(bool sentinel, int wedged) {
  Section s;
  for (int t = 0; t < kTrials; ++t) {
    const TrialResult r = run_trial(sentinel, wedged);
    s.dispatch_ms.add(r.dispatch_ms_max);
    s.activated += r.activated;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("syscall_comp");
  std::printf("=== Wedged-worker dispatch latency: wedge sentinel on vs off ===\n");
  std::printf("(%d workers, %d ready probes, wedge %lld ms, grace %lld ms, "
              "watchdog %d ms, %d trials)\n\n",
              kWorkers, kProbes, (long long)(kWedgeNs / 1'000'000),
              (long long)(kGraceNs / 1'000'000), kWatchdogMs, kTrials);

  const Section half_on = run_section(true, 1);
  const Section half_off = run_section(false, 1);
  const Section all_on = run_section(true, kWorkers);
  const Section all_off = run_section(false, kWorkers);

  Table table({"scenario", "sentinel", "dispatch max (median over trials)",
               "compensations"});
  const struct {
    const char* name;
    const char* mode;
    const Section* s;
  } rows[] = {{"half-wedged", "on", &half_on},
              {"half-wedged", "off", &half_off},
              {"all-wedged", "on", &all_on},
              {"all-wedged", "off", &all_off}};
  for (const auto& row : rows)
    table.add_row({row.name, row.mode,
                   Table::fmt("%8.2f ms", row.s->dispatch_ms.median()),
                   Table::fmt("%llu", (unsigned long long)row.s->activated)});
  table.print();

  // The sentinel's rescue bound: grace, then up to a couple of watchdog
  // polls to flag + activate. "Within 3 sentinel periods past the grace" is
  // the acceptance shape for the all-wedged rescue.
  const double bound_ms = (kGraceNs / 1e6) + 3.0 * kWatchdogMs;
  const double wedge_ms = kWedgeNs / 1e6;
  std::printf("\nShape checks (tolerant: this is a noisy shared container):\n");
  std::printf("  [%s] all-wedged + sentinel: probes dispatch within the "
              "rescue bound (%.2f ms <= %.0f ms)\n",
              all_on.dispatch_ms.median() <= bound_ms ? "OK" : "NOISY",
              all_on.dispatch_ms.median(), bound_ms);
  std::printf("  [%s] all-wedged without it: probes wait out the wedge "
              "(%.2f ms, wedge %.0f ms)\n",
              all_off.dispatch_ms.median() >= 0.8 * wedge_ms ? "OK" : "NOISY",
              all_off.dispatch_ms.median(), wedge_ms);
  std::printf("  [%s] half-wedged: spare capacity masks the wedge in both "
              "modes (on %.2f ms, off %.2f ms)\n",
              (half_on.dispatch_ms.median() <= bound_ms &&
               half_off.dispatch_ms.median() <= bound_ms)
                  ? "OK"
                  : "NOISY",
              half_on.dispatch_ms.median(), half_off.dispatch_ms.median());
  std::printf("  [%s] the sentinel did the rescuing (all-wedged "
              "compensations on=%llu, off=%llu)\n",
              all_on.activated > 0 && all_off.activated == 0 ? "OK" : "NOISY",
              (unsigned long long)all_on.activated,
              (unsigned long long)all_off.activated);

  json.set("config.workers", std::uint64_t(kWorkers));
  json.set("config.wedge_ms", wedge_ms);
  json.set("config.grace_ms", kGraceNs / 1e6);
  json.set("config.watchdog_ms", std::uint64_t(kWatchdogMs));
  json.set_stats("half_wedged.on.dispatch_ms", half_on.dispatch_ms);
  json.set_stats("half_wedged.off.dispatch_ms", half_off.dispatch_ms);
  json.set_stats("all_wedged.on.dispatch_ms", all_on.dispatch_ms);
  json.set_stats("all_wedged.off.dispatch_ms", all_off.dispatch_ms);
  json.set("all_wedged.on.compensations", all_on.activated);
  json.set("all_wedged.off.compensations", all_off.activated);
  json.set("all_wedged.on.latency_over_sentinel_period",
           all_on.dispatch_ms.median() / kWatchdogMs);
  json.set("all_wedged.off.latency_over_sentinel_period",
           all_off.dispatch_ms.median() / kWatchdogMs);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
