// Minimal Prometheus text-exposition parser used by the metrics tests and the
// check.sh smoke (tests/tools/prom_check.cpp). Strict on the subset the
// runtime emits: it validates metric-name charsets, label syntax, numeric
// values, # TYPE/# HELP placement, the counter `_total` naming convention,
// and duplicate series — so a formatting regression in the exporter fails a
// test instead of a scrape.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace lpt::promtest {

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct Parsed {
  std::vector<Sample> samples;
  std::map<std::string, std::string> types;  ///< family -> counter|gauge
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }

  /// Sum of every sample of `name` whose labels all match `where`.
  double sum(const std::string& name,
             const std::map<std::string, std::string>& where = {}) const {
    double total = 0.0;
    for (const Sample& s : samples) {
      if (s.name != name) continue;
      bool match = true;
      for (const auto& kv : where) {
        auto it = s.labels.find(kv.first);
        if (it == s.labels.end() || it->second != kv.second) {
          match = false;
          break;
        }
      }
      if (match) total += s.value;
    }
    return total;
  }

  const Sample* find(const std::string& name,
                     const std::map<std::string, std::string>& labels) const {
    for (const Sample& s : samples)
      if (s.name == name && s.labels == labels) return &s;
    return nullptr;
  }

  bool has_family(const std::string& name) const {
    return types.count(name) != 0;
  }
};

namespace detail {

inline bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  return true;
}

inline bool valid_label_key(const std::string& s) { return valid_name(s); }

/// Histogram samples use the family name plus a well-known suffix; map
/// "name_bucket" / "name_sum" / "name_count" back to "name" so they resolve
/// against the family's TYPE line.
inline std::string histogram_family(const std::string& name) {
  static const char* kSuffixes[] = {"_bucket", "_sum", "_count"};
  for (const char* suf : kSuffixes) {
    const std::size_t n = std::char_traits<char>::length(suf);
    if (name.size() > n && name.compare(name.size() - n, n, suf) == 0)
      return name.substr(0, name.size() - n);
  }
  return name;
}

}  // namespace detail

/// Parse a full exposition. All structural problems are collected into
/// `errors` (with line numbers) rather than stopping at the first.
inline Parsed parse(const std::string& text) {
  Parsed out;
  // family -> whether a sample was already seen (TYPE must come first).
  std::map<std::string, bool> family_sampled;
  std::map<std::string, int> series_seen;  // duplicate detection
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    auto err = [&](const std::string& msg) {
      out.errors.push_back("line " + std::to_string(lineno) + ": " + msg);
    };

    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" / "# HELP <name> <text>"
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          err("malformed TYPE line");
          continue;
        }
        const std::string fam = rest.substr(0, sp);
        const std::string kind = rest.substr(sp + 1);
        if (!detail::valid_name(fam)) err("bad family name '" + fam + "'");
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          err("unknown TYPE kind '" + kind + "'");
        if (out.types.count(fam)) err("duplicate TYPE for '" + fam + "'");
        if (family_sampled.count(fam) && family_sampled[fam])
          err("TYPE for '" + fam + "' after its samples");
        if (kind == "counter" &&
            (fam.size() < 6 || fam.compare(fam.size() - 6, 6, "_total") != 0))
          err("counter '" + fam + "' does not end in _total");
        out.types[fam] = kind;
      }
      continue;  // HELP and comments need no validation beyond being comments
    }

    // Sample line: name[{k="v",...}] value
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name = line.substr(0, i);
    if (!detail::valid_name(name)) {
      err("bad metric name '" + name + "'");
      continue;
    }
    Sample s;
    s.name = name;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        if (eq == std::string::npos) {
          err("label without '='");
          break;
        }
        const std::string key = line.substr(i, eq - i);
        if (!detail::valid_label_key(key)) err("bad label key '" + key + "'");
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          err("label value not quoted");
          break;
        }
        std::size_t endq = line.find('"', eq + 2);
        if (endq == std::string::npos) {
          err("unterminated label value");
          break;
        }
        s.labels[key] = line.substr(eq + 2, endq - (eq + 2));
        i = endq + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') {
        err("unterminated label set");
        continue;
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      err("missing value separator");
      continue;
    }
    const std::string valstr = line.substr(i + 1);
    char* end = nullptr;
    s.value = std::strtod(valstr.c_str(), &end);
    if (end == valstr.c_str() || *end != '\0') {
      err("bad sample value '" + valstr + "'");
      continue;
    }

    // Family of a sample = exact TYPE match, or — for _bucket/_sum/_count
    // suffixes — the base name when it is TYPE'd as a histogram.
    std::string fam = s.name;
    if (!out.types.count(fam)) {
      const std::string base = detail::histogram_family(s.name);
      auto it = out.types.find(base);
      if (it != out.types.end() && it->second == "histogram")
        fam = base;
      else
        err("sample '" + s.name + "' has no preceding TYPE");
    }
    family_sampled[fam] = true;

    std::string key = s.name;
    for (const auto& kv : s.labels)
      key += "|" + kv.first + "=" + kv.second;
    if (++series_seen[key] > 1) err("duplicate series " + key);

    out.samples.push_back(std::move(s));
  }
  return out;
}

}  // namespace lpt::promtest
