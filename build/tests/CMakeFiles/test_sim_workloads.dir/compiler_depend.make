# Empty compiler generated dependencies file for test_sim_workloads.
# This may be replaced when dependencies are built.
