file(REMOVE_RECURSE
  "CMakeFiles/real_overhead.dir/real_overhead.cpp.o"
  "CMakeFiles/real_overhead.dir/real_overhead.cpp.o.d"
  "real_overhead"
  "real_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
