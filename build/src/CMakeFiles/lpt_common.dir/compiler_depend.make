# Empty compiler generated dependencies file for lpt_common.
# This may be replaced when dependencies are built.
