// Pluggable user-level schedulers (the "users can develop their own
// schedulers" capability of M:N threads, §2.1). The runtime ships the three
// schedulers the paper evaluates: work stealing (§4.1), thread packing
// (Algorithm 1, §4.2), and two-class priority (§4.3).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/spinlock.hpp"
#include "common/prng.hpp"

namespace lpt {

class Runtime;
struct Worker;
struct ThreadCtl;

/// Why a thread is being enqueued; schedulers may treat these differently
/// (e.g. the work-stealing scheduler pushes preempted threads to the local
/// FIFO exactly as the paper's modified BOLT scheduler does).
enum class EnqueueKind : std::uint8_t {
  kSpawn,      ///< newly created
  kYield,      ///< voluntarily yielded
  kPreempted,  ///< implicitly preempted by a timer signal
  kUnblock,    ///< released by a sync primitive / join
};

/// Scheduler interface. pick() runs in scheduler (worker) context; enqueue()
/// may run in scheduler context, in a ULT under a no-preempt guard, or on an
/// external thread — never inside a signal handler.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void init(Runtime& rt) = 0;
  /// Next thread for this worker, or nullptr if none available.
  virtual ThreadCtl* pick(Worker& w) = 0;
  virtual void enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) = 0;
  /// Best-effort "is any work queued" (used for idle backoff / shutdown).
  virtual bool has_work() const = 0;
  /// Ready threads currently queued for worker `rank` (the always-on
  /// run-queue-depth gauge and the watchdog's starvation check). Best-effort
  /// instantaneous value; the default keeps custom schedulers working — depth
  /// then reads 0 and runnable-starvation detection is effectively off.
  virtual std::int64_t queue_depth(int rank) const {
    (void)rank;
    return 0;
  }
};

/// Spinlock-protected deque of ready threads, shared building block.
///
/// depth() is a lock-free mirror of size() for the metrics/watchdog readers:
/// it is updated by a relaxed store while the spinlock is already held (so
/// the mirror is exact, not approximate) and costs the mutators ~1 store —
/// readers never touch the lock a signal-handler-adjacent path may contend.
class ThreadQueue {
 public:
  void push_back(ThreadCtl* t) {
    SpinlockGuard g(lock_);
    q_.push_back(t);
    depth_.store(static_cast<std::int32_t>(q_.size()),
                 std::memory_order_relaxed);
  }
  void push_front(ThreadCtl* t) {
    SpinlockGuard g(lock_);
    q_.push_front(t);
    depth_.store(static_cast<std::int32_t>(q_.size()),
                 std::memory_order_relaxed);
  }
  ThreadCtl* pop_front() {
    SpinlockGuard g(lock_);
    if (q_.empty()) return nullptr;
    ThreadCtl* t = q_.front();
    q_.pop_front();
    depth_.store(static_cast<std::int32_t>(q_.size()),
                 std::memory_order_relaxed);
    return t;
  }
  ThreadCtl* pop_back() {
    SpinlockGuard g(lock_);
    if (q_.empty()) return nullptr;
    ThreadCtl* t = q_.back();
    q_.pop_back();
    depth_.store(static_cast<std::int32_t>(q_.size()),
                 std::memory_order_relaxed);
    return t;
  }
  bool empty() const {
    SpinlockGuard g(lock_);
    return q_.empty();
  }
  std::size_t size() const {
    SpinlockGuard g(lock_);
    return q_.size();
  }
  std::int64_t depth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  mutable Spinlock lock_;
  std::deque<ThreadCtl*> q_;
  std::atomic<std::int32_t> depth_{0};
};

/// BOLT-like default: each worker prioritizes its own FIFO queue and steals
/// from a random remote queue when empty (§4.1). Preempted threads go to the
/// *local* FIFO so every thread is rescheduled within a finite time.
class WorkStealingScheduler final : public Scheduler {
 public:
  void init(Runtime& rt) override;
  ThreadCtl* pick(Worker& w) override;
  void enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) override;
  bool has_work() const override;
  std::int64_t queue_depth(int rank) const override;

 private:
  Runtime* rt_ = nullptr;
  std::vector<std::unique_ptr<ThreadQueue>> queues_;  // one per worker
  std::vector<std::unique_ptr<Xoshiro256>> rngs_;     // one per worker
};

/// Algorithm 1 from the paper: N_total pools; each active worker first scans
/// its private pools (rank, rank+N_active, ... < N_private) and then the
/// shared pools (N_private .. N_total), slicing shared-pool threads
/// round-robin at the preemption interval.
class PackingScheduler final : public Scheduler {
 public:
  void init(Runtime& rt) override;
  ThreadCtl* pick(Worker& w) override;
  void enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) override;
  bool has_work() const override;
  /// Pool `rank` only (shared pools beyond num_workers are not attributed
  /// to any worker's depth; they surface via has_work / steals instead).
  std::int64_t queue_depth(int rank) const override;

  /// Exposed for unit tests: the private-pool bound N_private given the
  /// current worker counts (line 6 of Algorithm 1).
  static int private_bound(int n_total, int n_active) {
    return n_active * (n_total / n_active);
  }

 private:
  Runtime* rt_ = nullptr;
  int n_total_ = 0;
  std::vector<std::unique_ptr<ThreadQueue>> pools_;
  std::vector<std::uint8_t> phase_;  // per-worker private/shared alternation
  std::vector<int> shared_next_;     // per-worker round-robin shared cursor
};

/// Two-class priority scheduler (§4.3): high-priority threads (priority 0,
/// e.g. simulation) in per-worker FIFOs scheduled before low-priority
/// threads (priority 1, e.g. in situ analysis) kept in per-worker LIFOs "in
/// order not to hurt data locality during preemption".
class PriorityScheduler final : public Scheduler {
 public:
  void init(Runtime& rt) override;
  ThreadCtl* pick(Worker& w) override;
  void enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) override;
  bool has_work() const override;
  std::int64_t queue_depth(int rank) const override;  ///< high + low

 private:
  Runtime* rt_ = nullptr;
  std::vector<std::unique_ptr<ThreadQueue>> high_;  // FIFO per worker
  std::vector<std::unique_ptr<ThreadQueue>> low_;   // LIFO per worker
  std::vector<std::unique_ptr<Xoshiro256>> rngs_;
};

}  // namespace lpt
