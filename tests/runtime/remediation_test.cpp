// Tier-1 tests of the self-healing runtime (docs/robustness.md
// "Self-healing"): ULT cancellation — cooperative at cancellation points and
// forced via a directed preemption tick — per-ULT deadlines, and the
// watchdog remediation ladder (retick / cancel / KLT replacement), under
// both preemption techniques. Every wedged workload here releases its spin
// flags before the Runtime is destroyed: a still-wedged orphaned KLT would
// otherwise block shutdown (the documented caveat).
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "runtime/signals.hpp"

namespace lpt {
namespace {

bool wait_until(const std::atomic<bool>& flag, std::int64_t timeout_ns) {
  const std::int64_t deadline = now_ns() + timeout_ns;
  while (!flag.load(std::memory_order_acquire)) {
    if (now_ns() > deadline) return false;
    usleep(1000);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cancellation: cooperative (cancellation points)
// ---------------------------------------------------------------------------

TEST(Cancel, CooperativeCancelAtYield) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::None;  // Preempt::None threads cancel cooperatively
  Runtime rt(o);

  std::atomic<bool> entered{false};
  Thread t = rt.spawn([&] {
    entered.store(true, std::memory_order_release);
    for (;;) this_thread::yield();  // cancellation point
  });
  ASSERT_TRUE(wait_until(entered, 2'000'000'000));
  EXPECT_TRUE(t.request_cancel());

  const ThreadStatus st = t.join_status();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.fault.kind, FaultKind::kCancelled);
  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.ult_cancels, 1u);
}

TEST(Cancel, CooperativeCancelInSleepAndTimedWait) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::None;
  Runtime rt(o);

  // sleep_for is a cancellation point: the sleeper is cancelled long before
  // its nominal wake time.
  std::atomic<bool> sleeping{false};
  Thread sleeper = rt.spawn([&] {
    sleeping.store(true, std::memory_order_release);
    this_thread::sleep_for(std::chrono::seconds(30));
  });
  ASSERT_TRUE(wait_until(sleeping, 2'000'000'000));
  const std::int64_t start = now_ns();
  EXPECT_TRUE(sleeper.request_cancel());
  const ThreadStatus st = sleeper.join_status();
  EXPECT_EQ(st.fault.kind, FaultKind::kCancelled);
  EXPECT_LT(now_ns() - start, 10'000'000'000) << "cancel should beat the nap";
}

TEST(Cancel, EmptyOrJoinedHandleReportsNoSuchThread) {
  Runtime rt{RuntimeOptions{}};
  Thread empty;
  EXPECT_FALSE(empty.request_cancel());

  Thread t = rt.spawn([] {});
  t.join();
  EXPECT_FALSE(t.request_cancel());  // already joined: handle is dead
}

TEST(Cancel, SiblingsSurviveCancelledThread) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::None;
  Runtime rt(o);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sibling_work{0};
  Thread sibling = rt.spawn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      sibling_work.fetch_add(1, std::memory_order_relaxed);
      this_thread::yield();
    }
  });
  Thread victim = rt.spawn([&] {
    for (;;) this_thread::yield();
  });
  EXPECT_TRUE(victim.request_cancel());
  EXPECT_EQ(victim.join_status().fault.kind, FaultKind::kCancelled);

  // The sibling keeps making progress after the victim died.
  const std::uint64_t before = sibling_work.load(std::memory_order_relaxed);
  const std::int64_t deadline = now_ns() + 2'000'000'000;
  while (sibling_work.load(std::memory_order_relaxed) == before &&
         now_ns() < deadline)
    usleep(1000);
  EXPECT_GT(sibling_work.load(std::memory_order_relaxed), before);
  stop.store(true, std::memory_order_release);
  sibling.join();
}

// ---------------------------------------------------------------------------
// Cancellation: forced (directed preemption tick), both techniques
// ---------------------------------------------------------------------------

void expect_directed_cancel_kills_spinner(Preempt technique) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  Runtime rt(o);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sibling_work{0};
  ThreadAttrs a;
  a.preempt = technique;
  Thread sibling = rt.spawn(
      [&] {
        while (!stop.load(std::memory_order_acquire)) {
          sibling_work.fetch_add(1, std::memory_order_relaxed);
          busy_spin_ns(100'000);
        }
      },
      a);

  std::atomic<bool> entered{false};
  Thread spinner = rt.spawn(
      [&] {
        entered.store(true, std::memory_order_release);
        // No cancellation point, ever: only the directed tick through the
        // fault-isolation path can end this thread.
        for (;;) busy_spin_ns(100'000);
      },
      a);
  ASSERT_TRUE(wait_until(entered, 2'000'000'000));

  EXPECT_TRUE(spinner.request_cancel());
  const ThreadStatus st = spinner.join_status();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.fault.kind, FaultKind::kCancelled);

  // Sibling unharmed; its worker keeps scheduling.
  const std::uint64_t before = sibling_work.load(std::memory_order_relaxed);
  const std::int64_t deadline = now_ns() + 2'000'000'000;
  while (sibling_work.load(std::memory_order_relaxed) == before &&
         now_ns() < deadline)
    usleep(1000);
  EXPECT_GT(sibling_work.load(std::memory_order_relaxed), before);
  stop.store(true, std::memory_order_release);
  sibling.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.ult_cancels, 1u);
  const metrics::Snapshot m = rt.metrics_snapshot();
  EXPECT_GE(m.stacks_quarantined, 1u) << "cancelled stack must quarantine";
}

TEST(Cancel, DirectedTickKillsSpinnerSignalYield) {
  expect_directed_cancel_kills_spinner(Preempt::SignalYield);
}

TEST(Cancel, DirectedTickKillsSpinnerKltSwitch) {
  expect_directed_cancel_kills_spinner(Preempt::KltSwitch);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(Deadline, PerSpawnDeadlineCancelsRunaway) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  Runtime rt(o);

  ThreadAttrs a;
  a.preempt = Preempt::SignalYield;
  a.deadline_ns = 50'000'000;  // 50 ms
  const std::int64_t start = now_ns();
  Thread runaway = rt.spawn([&] { for (;;) busy_spin_ns(100'000); }, a);
  const ThreadStatus st = runaway.join_status();
  EXPECT_EQ(st.fault.kind, FaultKind::kCancelled);
  // Deadline + a couple of watchdog/timer periods of slack.
  EXPECT_LT(now_ns() - start, 5'000'000'000);

  // A thread that finishes within its deadline is untouched.
  ThreadAttrs quick;
  quick.deadline_ns = 2'000'000'000;
  Thread ok = rt.spawn([] { busy_spin_ns(1'000'000); }, quick);
  EXPECT_EQ(ok.join_status().fault.kind, FaultKind::kNone);

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.remediations_cancel, 1u);
  EXPECT_GE(s.ult_cancels, 1u);
}

TEST(Deadline, DefaultDeadlineFromOptionsApplies) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.default_ult_deadline_ns = 80'000'000;  // every ULT gets 80 ms
  Runtime rt(o);

  ThreadAttrs a;
  a.preempt = Preempt::SignalYield;
  Thread runaway = rt.spawn([&] { for (;;) busy_spin_ns(100'000); }, a);
  EXPECT_EQ(runaway.join_status().fault.kind, FaultKind::kCancelled);
}

TEST(Deadline, ExpiryCancelsBlockedThreadAtWakeup) {
  // A deadline must also end a thread that is blocked (not running): the
  // cancel lands at the wakeup's cancellation point.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  Runtime rt(o);

  ThreadAttrs a;
  a.deadline_ns = 50'000'000;
  const std::int64_t start = now_ns();
  Thread t = rt.spawn([&] { this_thread::sleep_for(std::chrono::seconds(30)); },
                      a);
  EXPECT_EQ(t.join_status().fault.kind, FaultKind::kCancelled);
  EXPECT_LT(now_ns() - start, 10'000'000'000);
}

// ---------------------------------------------------------------------------
// Watchdog remediation ladder
// ---------------------------------------------------------------------------

TEST(Remediation, ReplacesMaskedWorkerKlt) {
  std::atomic<bool> replaced{false};
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.watchdog_stall_ticks = 4;
  o.remediation = true;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    if (r.kind == WatchdogReport::Kind::kWorkerStall &&
        r.remediation == RemediationKind::kKltReplace)
      replaced.store(true, std::memory_order_release);
  };
  Runtime rt(o);

  std::atomic<bool> victim_ran{false};
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  // A buggy ULT blocking the preemption signal wedges its worker: ticks land
  // but the handler never runs. The ladder replaces the host KLT; the wedged
  // tenant is stranded on the orphaned KLT and the fresh host runs the
  // victim — recovery without restarting the process.
  Thread wedge = rt.spawn(
      [&] {
        sigset_t set, old;
        sigemptyset(&set);
        sigaddset(&set, signals::preempt_signo());
        pthread_sigmask(SIG_BLOCK, &set, &old);
        const std::int64_t deadline = now_ns() + 10'000'000'000;
        while (!replaced.load(std::memory_order_acquire) &&
               now_ns() < deadline)
          busy_spin_ns(100'000);
        pthread_sigmask(SIG_SETMASK, &old, nullptr);
        // Returning lands on the orphaned KLT's exit path (the worker moved
        // on); finishing before Runtime destruction keeps shutdown clean.
      },
      sy);
  usleep(5'000);  // let the wedge occupy the worker before queueing a victim
  Thread victim = rt.spawn([&] { victim_ran.store(true, std::memory_order_release); });

  EXPECT_TRUE(wait_until(replaced, 10'000'000'000))
      << "stalled worker never remediated";
  EXPECT_TRUE(wait_until(victim_ran, 5'000'000'000))
      << "fresh host KLT never ran the queued victim";
  wedge.join();
  victim.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.remediations_klt_replace, 1u);
  EXPECT_GE(s.klts_retired, 1u);
  const metrics::Snapshot m = rt.metrics_snapshot();
  EXPECT_GE(m.remediations_klt_replace, 1u);
  EXPECT_GE(m.watchdog_worker_stall, 1u);
}

TEST(Remediation, RetickOnQuantumOverrun) {
  // Degraded KLT-switching (max_klts == worker hosts): every tick is
  // dropped, the ULT overstays its quantum, and the ladder's rung-1 re-tick
  // fires each poll period (budget-capped) until the thread ends.
  std::atomic<bool> reticked{false};
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1'000;
  o.max_klts = 1;
  o.watchdog_period_ms = 20;
  o.watchdog_quantum_factor = 10;
  o.remediation = true;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    if (r.kind == WatchdogReport::Kind::kQuantumOverrun &&
        r.remediation == RemediationKind::kRetick)
      reticked.store(true, std::memory_order_release);
  };
  Runtime rt(o);

  ThreadAttrs ks;
  ks.preempt = Preempt::KltSwitch;
  Thread t = rt.spawn(
      [&] {
        const std::int64_t deadline = now_ns() + 5'000'000'000;
        while (!reticked.load(std::memory_order_acquire) &&
               now_ns() < deadline)
          busy_spin_ns(100'000);
      },
      ks);
  t.join();

  EXPECT_TRUE(reticked.load()) << "overrun never remediated";
  EXPECT_GE(rt.stats().remediations_retick, 1u);
}

TEST(Remediation, OffByDefaultOnlyFlags) {
  // Same masked-worker pathology with the ladder off: the watchdog flags,
  // nothing acts. The wedge un-wedges itself so the runtime shuts down.
  std::atomic<bool> flagged{false};
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.watchdog_stall_ticks = 4;
  ASSERT_FALSE(o.remediation) << "remediation must be opt-in";
  o.watchdog_callback = [&](const WatchdogReport& r) {
    if (r.kind == WatchdogReport::Kind::kWorkerStall) {
      EXPECT_EQ(r.remediation, RemediationKind::kNone);
      flagged.store(true, std::memory_order_release);
    }
  };
  Runtime rt(o);

  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  Thread wedge = rt.spawn(
      [&] {
        sigset_t set, old;
        sigemptyset(&set);
        sigaddset(&set, signals::preempt_signo());
        pthread_sigmask(SIG_BLOCK, &set, &old);
        const std::int64_t deadline = now_ns() + 10'000'000'000;
        while (!flagged.load(std::memory_order_acquire) &&
               now_ns() < deadline)
          busy_spin_ns(100'000);
        pthread_sigmask(SIG_SETMASK, &old, nullptr);
      },
      sy);
  EXPECT_TRUE(wait_until(flagged, 10'000'000'000));
  wedge.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.remediations_retick, 0u);
  EXPECT_EQ(s.remediations_cancel, 0u);
  EXPECT_EQ(s.remediations_klt_replace, 0u);
  EXPECT_EQ(s.klts_retired, 0u);
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kWorkerStall), 1u);
}

TEST(Remediation, HealthyWorkloadTakesNoActions) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.remediation = true;  // armed, but a healthy load gives it nothing to do
  Runtime rt(o);

  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  const std::int64_t deadline = now_ns() + 300'000'000;
  while (now_ns() < deadline) {
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([] { busy_spin_ns(5'000'000); }, sy));
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([] { this_thread::yield(); }));
    for (auto& t : ts) t.join();
  }

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.remediations_retick, 0u);
  EXPECT_EQ(s.remediations_cancel, 0u);
  EXPECT_EQ(s.remediations_klt_replace, 0u);
  EXPECT_EQ(s.ult_cancels, 0u);
}

}  // namespace
}  // namespace lpt
