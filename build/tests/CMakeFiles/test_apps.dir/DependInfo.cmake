
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/blas_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/blas_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/blas_test.cpp.o.d"
  "/root/repo/tests/apps/cholesky_app_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/cholesky_app_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/cholesky_app_test.cpp.o.d"
  "/root/repo/tests/apps/md_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/md_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/md_test.cpp.o.d"
  "/root/repo/tests/apps/multigrid_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/multigrid_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/multigrid_test.cpp.o.d"
  "/root/repo/tests/apps/team_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/team_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/team_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lpt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_context.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
