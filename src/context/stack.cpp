#include "context/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace lpt {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Stack::Stack(std::size_t usable_size) {
  const std::size_t ps = page_size();
  const std::size_t usable = (usable_size + ps - 1) / ps * ps;
  const std::size_t total = usable + ps;  // + guard page
  void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  LPT_CHECK_MSG(p != MAP_FAILED, "mmap for ULT stack failed");
  LPT_CHECK(::mprotect(p, ps, PROT_NONE) == 0);
  map_ = p;
  map_size_ = total;
  base_ = static_cast<char*>(p) + ps;
  size_ = usable;
}

Stack::~Stack() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Stack::Stack(Stack&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Stack StackPool::acquire() {
  {
    SpinlockGuard g(lock_);
    if (!free_.empty()) {
      Stack s = std::move(free_.back());
      free_.pop_back();
      return s;
    }
  }
  return Stack(stack_size_);
}

void StackPool::release(Stack&& s) {
  LPT_CHECK(s.valid());
  SpinlockGuard g(lock_);
  free_.push_back(std::move(s));
}

std::size_t StackPool::cached() const {
  SpinlockGuard g(lock_);
  return free_.size();
}

}  // namespace lpt
