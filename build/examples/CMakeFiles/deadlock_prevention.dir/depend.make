# Empty dependencies file for deadlock_prevention.
# This may be replaced when dependencies are built.
