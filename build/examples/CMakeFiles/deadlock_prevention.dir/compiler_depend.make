# Empty compiler generated dependencies file for deadlock_prevention.
# This may be replaced when dependencies are built.
