#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace lpt {
namespace {

std::string render(const Table& t) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  return out;
}

TEST(Table, HeaderAndRowsRendered) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string out = render(t);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"wide-cell-here", "1"});
  std::string out = render(t);
  // Every line should have the same length since columns are padded.
  std::vector<std::size_t> lens;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    lens.push_back(nl - pos);
    pos = nl + 1;
  }
  for (std::size_t l : lens) EXPECT_EQ(l, lens[0]);
}

TEST(Table, MissingTrailingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::string out = render(t);
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(Table, FmtFormats) {
  EXPECT_EQ(Table::fmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Table::fmt("%d/%d", 3, 4), "3/4");
}

}  // namespace
}  // namespace lpt
