file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_basic.dir/runtime/runtime_basic_test.cpp.o"
  "CMakeFiles/test_runtime_basic.dir/runtime/runtime_basic_test.cpp.o.d"
  "test_runtime_basic"
  "test_runtime_basic.pdb"
  "test_runtime_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
